//! A small scoped thread pool for the parallel solver kernels.
//!
//! Everything hot in `vstack` — SpMV inside CG, the IC(0) triangular
//! solves, scenario fan-out in the experiment drivers — runs through this
//! pool. It is deliberately tiny and std-only (no external dependencies):
//! a fixed set of persistent worker threads that execute one *broadcast*
//! job at a time. A broadcast hands every execution context (the workers
//! plus the calling thread) the same closure and a distinct context index;
//! kernels partition their work by that index.
//!
//! # Determinism
//!
//! The pool itself never reorders arithmetic. Every kernel built on top of
//! it is written so the floating-point result is **bit-identical for any
//! context count**, including the serial fallback:
//!
//! * SpMV partitions *rows*; each row's accumulation order is fixed.
//! * Reductions ([`crate::vecops::dot`]/[`crate::vecops::norm2`]) use
//!   fixed-size chunks and a fixed binary combination tree, independent of
//!   how chunks were assigned to threads.
//! * The IC(0) triangular solves parallelize only *within* a dependency
//!   level; each row's update is self-contained.
//!
//! # Nesting and fallback
//!
//! A broadcast issued from inside a pool worker (e.g. a per-scenario task
//! that reaches a parallel SpMV) runs inline on the calling thread, over
//! all context indices, in order. The same happens when another thread is
//! mid-broadcast. This keeps the pool deadlock-free and — because kernels
//! are partition-independent — changes nothing about the results.

#![allow(unsafe_code)]

use std::cell::{Cell, RefCell};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Environment variable overriding the global pool's context count.
pub const THREADS_ENV: &str = "VSTACK_THREADS";

thread_local! {
    /// True on pool worker threads: nested broadcasts must run inline.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
    /// Scoped pool overrides installed by [`with_pool`] (innermost last).
    static CURRENT: RefCell<Vec<Arc<ThreadPool>>> = const { RefCell::new(Vec::new()) };
}

/// Lifetime-erased pointer to the broadcast closure.
///
/// Soundness: [`ThreadPool::run`] does not return until every worker has
/// finished executing the closure, so the borrow it erases is live for
/// every dereference.
#[derive(Clone, Copy)]
struct Job(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared execution is the whole point) and
// `run` keeps it alive until all workers are done with it.
unsafe impl Send for Job {}

struct JobState {
    /// Bumped once per broadcast; workers use it to detect new jobs.
    epoch: u64,
    job: Option<Job>,
    /// Workers still executing the current broadcast.
    remaining: usize,
    /// Set if any worker's closure panicked.
    panicked: bool,
    shutdown: bool,
}

struct Shared {
    state: Mutex<JobState>,
    work: Condvar,
    done: Condvar,
}

/// A fixed-size scoped thread pool (see the [module docs](self)).
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    /// Serializes broadcasts; contended callers fall back to inline
    /// execution instead of queueing.
    submit: Mutex<()>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("contexts", &self.contexts())
            .finish()
    }
}

impl ThreadPool {
    /// Creates a pool with `contexts` execution contexts: the calling
    /// thread plus `contexts − 1` persistent workers. `contexts` is
    /// clamped to at least 1.
    pub fn new(contexts: usize) -> Self {
        let workers = contexts.max(1) - 1;
        let shared = Arc::new(Shared {
            state: Mutex::new(JobState {
                epoch: 0,
                job: None,
                remaining: 0,
                panicked: false,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|idx| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("vstack-pool-{idx}"))
                    .spawn(move || worker_loop(&shared, idx))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        ThreadPool {
            shared,
            handles,
            submit: Mutex::new(()),
        }
    }

    /// Number of execution contexts (workers + the calling thread).
    pub fn contexts(&self) -> usize {
        self.handles.len() + 1
    }

    /// Runs `f(ctx)` once for every context index `ctx ∈ 0..contexts()`,
    /// in parallel when possible, and returns when all are done.
    ///
    /// Falls back to executing every context inline, in index order, when
    /// the pool has a single context, the caller is itself a pool worker,
    /// or another broadcast is in flight. Kernels must therefore not
    /// depend on contexts running concurrently.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any context's execution of `f`.
    pub fn run(&self, f: &(dyn Fn(usize) + Sync)) {
        let workers = self.handles.len();
        if workers == 0 || IN_POOL.with(Cell::get) {
            vstack_obs::metrics::global().pool_serial_runs.inc();
            for ctx in 0..=workers {
                f(ctx);
            }
            return;
        }
        let Ok(_guard) = self.submit.try_lock() else {
            vstack_obs::metrics::global().pool_serial_runs.inc();
            for ctx in 0..=workers {
                f(ctx);
            }
            return;
        };
        vstack_obs::metrics::global().pool_broadcasts.inc();
        // SAFETY: we erase the lifetime of `f` to hand it to the workers;
        // this function blocks until `remaining == 0`, i.e. until no
        // worker can touch it again, before returning.
        let job = Job(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
        });
        {
            let mut st = self.shared.state.lock().expect("pool poisoned");
            st.epoch += 1;
            st.job = Some(job);
            st.remaining = workers;
            st.panicked = false;
            self.shared.work.notify_all();
        }
        // The caller participates as the last context index.
        let caller = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(workers)));
        let worker_panicked = {
            let mut st = self.shared.state.lock().expect("pool poisoned");
            while st.remaining > 0 {
                st = self.shared.done.wait(st).expect("pool poisoned");
            }
            st.job = None;
            st.panicked
        };
        if let Err(payload) = caller {
            std::panic::resume_unwind(payload);
        }
        assert!(!worker_panicked, "vstack thread-pool worker panicked");
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool poisoned");
            st.shutdown = true;
            self.shared.work.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, idx: usize) {
    IN_POOL.with(|c| c.set(true));
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().expect("pool poisoned");
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    seen = st.epoch;
                    break st.job.expect("job published with epoch bump");
                }
                st = shared.work.wait(st).expect("pool poisoned");
            }
        };
        // SAFETY: `run` keeps the closure alive until `remaining == 0`.
        let f = unsafe { &*job.0 };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(idx)));
        let mut st = shared.state.lock().expect("pool poisoned");
        if result.is_err() {
            st.panicked = true;
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done.notify_all();
        }
    }
}

/// Resolves the pool width from a raw [`THREADS_ENV`] value. A missing
/// variable yields `default_width` silently; an unparsable or zero value
/// yields `default_width` plus a warning line for stderr. Never panics —
/// a bad environment must degrade a service, not kill it.
pub fn resolve_thread_count(raw: Option<&str>, default_width: usize) -> (usize, Option<String>) {
    match raw {
        None => (default_width, None),
        Some(value) => match value.trim().parse::<usize>() {
            Ok(n) if n >= 1 => (n, None),
            Ok(_) => (
                default_width,
                Some(format!(
                    "{THREADS_ENV}={value:?} must be >= 1; using {default_width} thread(s)"
                )),
            ),
            Err(_) => (
                default_width,
                Some(format!(
                    "{THREADS_ENV}={value:?} is not an integer; using {default_width} thread(s)"
                )),
            ),
        },
    }
}

/// The process-wide pool, sized from [`THREADS_ENV`] (if set to a positive
/// integer) or [`std::thread::available_parallelism`]. An invalid override
/// falls back to the default width with a once-per-process warning through
/// the `vstack-obs` logger (target `pool`).
pub fn global() -> &'static ThreadPool {
    static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let default_width = std::thread::available_parallelism().map_or(1, |n| n.get());
        let raw = std::env::var(THREADS_ENV).ok();
        let (contexts, warning) = resolve_thread_count(raw.as_deref(), default_width);
        if let Some(warning) = warning {
            vstack_obs::warn_once!("pool", "{warning}");
        }
        ThreadPool::new(contexts)
    })
}

/// Runs `f` with `pool` installed as the calling thread's active pool:
/// every kernel that consults [`active`] inside `f` uses it instead of
/// the [`global`] pool. Overrides nest; the innermost wins.
pub fn with_pool<R>(pool: &Arc<ThreadPool>, f: impl FnOnce() -> R) -> R {
    CURRENT.with(|c| c.borrow_mut().push(Arc::clone(pool)));
    struct PopGuard;
    impl Drop for PopGuard {
        fn drop(&mut self) {
            CURRENT.with(|c| {
                c.borrow_mut().pop();
            });
        }
    }
    let _guard = PopGuard;
    f()
}

/// Hands `f` the calling thread's active pool: the innermost [`with_pool`]
/// override, or the [`global`] pool.
pub fn active<R>(f: impl FnOnce(&ThreadPool) -> R) -> R {
    let local = CURRENT.with(|c| c.borrow().last().cloned());
    match local {
        Some(p) => f(&p),
        None => f(global()),
    }
}

/// Maps `f` over `items` on the active pool, preserving order.
///
/// Items are dispatched dynamically (work stealing by atomic index), which
/// is fair for unequal task sizes; results land in their input slot, so
/// the output order — and, for deterministic `f`, the output itself — is
/// independent of the schedule.
///
/// # Panics
///
/// Propagates a panic from any invocation of `f`.
pub fn par_map<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    let n = items.len();
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let out: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    active(|pool| {
        pool.run(&|_ctx| loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            let item = slots[i]
                .lock()
                .expect("par_map slot poisoned")
                .take()
                .expect("par_map item taken twice");
            let r = f(item);
            *out[i].lock().expect("par_map out poisoned") = Some(r);
        });
    });
    out.into_iter()
        .map(|m| {
            m.into_inner()
                .expect("par_map out poisoned")
                .expect("par_map item not mapped")
        })
        .collect()
}

/// A `Sync` view of a mutable `f64` slice for partitioned kernel writes.
///
/// Rust's borrow rules cannot express "many threads write disjoint,
/// data-dependent index sets of one slice" (the access pattern of
/// row-partitioned SpMV and level-scheduled triangular solves), so this
/// wrapper re-establishes the guarantee manually via its safety contract.
pub struct SharedSliceMut<'a> {
    ptr: *mut f64,
    len: usize,
    _marker: PhantomData<&'a mut [f64]>,
}

// SAFETY: all access goes through `unsafe` methods whose contracts forbid
// data races; the wrapper itself is just a pointer + length.
unsafe impl Sync for SharedSliceMut<'_> {}
// SAFETY: as above.
unsafe impl Send for SharedSliceMut<'_> {}

impl<'a> SharedSliceMut<'a> {
    /// Wraps an exclusive slice borrow.
    pub fn new(slice: &'a mut [f64]) -> Self {
        SharedSliceMut {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    /// Length of the underlying slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the underlying slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads element `i`.
    ///
    /// # Safety
    ///
    /// `i < len()`, and no other thread may be writing element `i`
    /// concurrently.
    pub unsafe fn get(&self, i: usize) -> f64 {
        debug_assert!(i < self.len);
        // SAFETY: bounds and race freedom are the caller's contract.
        unsafe { *self.ptr.add(i) }
    }

    /// Writes element `i`.
    ///
    /// # Safety
    ///
    /// `i < len()`, and no other thread may be reading or writing element
    /// `i` concurrently.
    pub unsafe fn set(&self, i: usize, v: f64) {
        debug_assert!(i < self.len);
        // SAFETY: bounds and race freedom are the caller's contract.
        unsafe { *self.ptr.add(i) = v };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn thread_count_resolution_never_panics() {
        // Unset: default, no warning.
        assert_eq!(resolve_thread_count(None, 6), (6, None));
        // Valid values win, whitespace tolerated.
        assert_eq!(resolve_thread_count(Some("3"), 6), (3, None));
        assert_eq!(resolve_thread_count(Some(" 12 "), 6), (12, None));
        // Zero and garbage fall back to the default with a warning.
        for bad in ["0", "abc", "", "-2", "3.5", "1e2"] {
            let (width, warning) = resolve_thread_count(Some(bad), 6);
            assert_eq!(width, 6, "{bad:?} must fall back");
            let warning = warning.expect("bad value must warn");
            assert!(warning.contains(THREADS_ENV), "{warning}");
        }
    }

    #[test]
    fn run_visits_every_context_exactly_once() {
        for contexts in [1, 2, 4, 7] {
            let pool = ThreadPool::new(contexts);
            let hits: Vec<AtomicUsize> = (0..contexts).map(|_| AtomicUsize::new(0)).collect();
            pool.run(&|ctx| {
                hits[ctx].fetch_add(1, Ordering::Relaxed);
            });
            for (ctx, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "context {ctx}");
            }
        }
    }

    #[test]
    fn nested_run_is_inline_and_complete() {
        let pool = ThreadPool::new(3);
        let total = AtomicU64::new(0);
        pool.run(&|_outer| {
            // Nested broadcast from a worker context must run inline over
            // every context index without deadlocking.
            pool.run(&|inner| {
                total.fetch_add(1 + inner as u64, Ordering::Relaxed);
            });
        });
        // 3 outer contexts × Σ(1+inner) for inner ∈ {0,1,2} = 3 × 6.
        assert_eq!(total.load(Ordering::Relaxed), 18);
    }

    #[test]
    fn par_map_preserves_order() {
        let pool = Arc::new(ThreadPool::new(4));
        let out = with_pool(&pool, || par_map((0..100).collect(), |i: usize| i * i));
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn with_pool_overrides_global() {
        let pool = Arc::new(ThreadPool::new(5));
        let seen = with_pool(&pool, || active(ThreadPool::contexts));
        assert_eq!(seen, 5);
    }

    #[test]
    fn worker_panic_propagates() {
        let pool = ThreadPool::new(4);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(&|ctx| {
                if ctx == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // The pool must remain usable after a panicked broadcast.
        let count = AtomicUsize::new(0);
        pool.run(&|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn shared_slice_round_trips() {
        let mut v = vec![0.0; 8];
        let s = SharedSliceMut::new(&mut v);
        // SAFETY: single-threaded, in-bounds.
        unsafe {
            s.set(3, 2.5);
            assert_eq!(s.get(3), 2.5);
        }
        assert_eq!(v[3], 2.5);
    }
}
