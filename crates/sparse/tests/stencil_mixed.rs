//! Integration tests for the matrix-free stencil operator and the
//! mixed-precision ladder rung.
//!
//! Three contracts are exercised property-style:
//!
//! 1. **Bit-identity** — applying a [`StencilOperator`] extracted from a
//!    stacked-grid CSR reproduces `CsrMatrix::mul_vec_into` bit-for-bit,
//!    serially and at 1/2/4 pool contexts, with and without irregular
//!    converter taps.
//! 2. **f32/f64 agreement** — the mixed-precision rung converges to the
//!    same CG tolerance as the all-f64 ladder on random regular and
//!    converter-coupled grids, and the solutions agree.
//! 3. **Allocation stability** — AMG and IC(0) re-setup on a warm
//!    [`SolveWorkspace`] never regrow their scratch buffers.

use std::sync::Arc;

use proptest::prelude::*;
use vstack_sparse::pool::ThreadPool;
use vstack_sparse::solver::{cg_with_guess_ws, CgOptions, Preconditioner};
use vstack_sparse::{
    solve_robust, solve_robust_operator_ws, AmgHierarchy, AmgOptions, CsrMatrix, RobustOptions,
    SolveMethod, SolveWorkspace, StencilDescriptor, StencilOperator, TripletMatrix,
};

/// Assembles the conductance matrix of a stacked regular grid: uniform
/// horizontal coupling `horiz[p]` per plane, per-node vertical coupling
/// `vert[i]` across flagged interfaces, per-node diagonal anchor
/// `anchor[i]` (keeps the system SPD), and arbitrary converter `taps`
/// that land as irregular rank-1 stamps.
fn stacked_grid(
    desc: &StencilDescriptor,
    horiz: &[f64],
    vert: &[f64],
    anchor: &[f64],
    taps: &[(usize, usize, f64)],
) -> CsrMatrix {
    let (nx, ny) = (desc.nx, desc.ny);
    let ps = nx * ny;
    let n = desc.unknowns();
    let mut t = TripletMatrix::new(n, n);
    for (p, &g) in horiz.iter().enumerate().take(desc.planes) {
        for iy in 0..ny {
            for ix in 0..nx {
                let i = p * ps + iy * nx + ix;
                if ix + 1 < nx {
                    t.stamp_conductance(Some(i), Some(i + 1), g);
                }
                if iy + 1 < ny {
                    t.stamp_conductance(Some(i), Some(i + nx), g);
                }
            }
        }
    }
    for (p, &coupled) in desc.interfaces.iter().enumerate() {
        if coupled {
            for (i, &gv) in vert.iter().enumerate().take((p + 1) * ps).skip(p * ps) {
                t.stamp_conductance(Some(i), Some(i + ps), gv);
            }
        }
    }
    for (i, &g) in anchor.iter().enumerate() {
        t.push(i, i, g);
    }
    for &(p, q, g) in taps {
        if p != q {
            t.stamp_conductance(Some(p), Some(q), g);
        }
    }
    t.to_csr()
}

/// Small LCG for size-dependent random data: the vendored proptest stub
/// has no `prop_flat_map`, so dimensions come from range strategies and
/// everything sized by them is derived deterministically from a `u64`
/// seed strategy through this generator.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    /// Uniform `f64` in `[lo, hi)`.
    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (self.next() >> 11) as f64 / (1u64 << 53) as f64 * (hi - lo)
    }

    /// Uniform `usize` in `[0, bound)`; `bound` must be positive.
    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound as u64) as usize
    }
}

/// Strategy: a random stacked-grid descriptor plus its assembled CSR,
/// with up to `max_taps` converter-style cross-grid stamps.
fn stacked_case(max_taps: usize) -> impl Strategy<Value = (StencilDescriptor, CsrMatrix)> {
    (2..6usize, 2..6usize, 1..5usize, 0..u64::MAX).prop_map(move |(nx, ny, planes, seed)| {
        let mut rng = Lcg(seed);
        let n = nx * ny * planes;
        let desc = StencilDescriptor {
            nx,
            ny,
            planes,
            interfaces: (1..planes).map(|_| rng.next() & 1 == 1).collect(),
        };
        let horiz: Vec<f64> = (0..planes).map(|_| rng.range(0.5, 20.0)).collect();
        let vert: Vec<f64> = (0..n).map(|_| rng.range(0.5, 20.0)).collect();
        let anchor: Vec<f64> = (0..n).map(|_| rng.range(0.01, 2.0)).collect();
        let taps: Vec<(usize, usize, f64)> = (0..rng.below(max_taps + 1))
            .map(|_| (rng.below(n), rng.below(n), rng.range(0.5, 5.0)))
            .collect();
        let a = stacked_grid(&desc, &horiz, &vert, &anchor, &taps);
        (desc, a)
    })
}

/// Deterministic pseudo-random vector in `[-3, 3)` from an LCG seed.
fn lcg_vec(seed: u64, n: usize) -> Vec<f64> {
    let mut rng = Lcg(seed);
    (0..n).map(|_| rng.range(-3.0, 3.0)).collect()
}

/// Shared pools, as in `properties.rs` — spawning per case would dominate.
fn pools() -> &'static [Arc<ThreadPool>] {
    static POOLS: std::sync::OnceLock<Vec<Arc<ThreadPool>>> = std::sync::OnceLock::new();
    POOLS.get_or_init(|| {
        [1, 2, 4]
            .iter()
            .map(|&c| Arc::new(ThreadPool::new(c)))
            .collect()
    })
}

fn norm2(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

proptest! {
    /// The stencil apply is bit-identical to the CSR apply — serial and at
    /// 1/2/4 pool contexts — on random stacked grids with converter taps.
    #[test]
    fn stencil_apply_bit_identical_to_csr(
        case in stacked_case(3),
        seed in 0..u64::MAX,
    ) {
        let (desc, a) = case;
        let n = desc.unknowns();
        let op = StencilOperator::from_csr(&a, desc).expect("extraction");
        let x = lcg_vec(seed, n);
        let mut want = vec![0.0; n];
        a.mul_vec_into(&x, &mut want);
        let mut got = vec![f64::NAN; n];
        op.mul_vec_into(&x, &mut got);
        for (w, g) in want.iter().zip(&got) {
            prop_assert_eq!(w.to_bits(), g.to_bits());
        }
        for pool in pools() {
            let mut par = vec![f64::NAN; n];
            op.par_mul_vec_into(pool, &x, &mut par);
            for (w, p) in want.iter().zip(&par) {
                prop_assert_eq!(w.to_bits(), p.to_bits());
            }
        }
    }

    /// Without converter taps every row fits the stencil: the side-CSR
    /// stays empty no matter the grid shape, couplings, or interfaces.
    #[test]
    fn untapped_grids_extract_fully_regular(case in stacked_case(0)) {
        let (desc, a) = case;
        let op = StencilOperator::from_csr(&a, desc).expect("extraction");
        prop_assert_eq!(op.irregular_rows(), 0);
    }

    /// The mixed-precision rung (stencil operator + f32 V-cycle) converges
    /// to the same CG tolerance as the all-f64 ladder and the solutions
    /// agree, on random regular and converter-coupled grids.
    #[test]
    fn mixed_precision_agrees_with_f64(
        case in stacked_case(2),
        seed in 0..u64::MAX,
    ) {
        let (desc, a) = case;
        let n = desc.unknowns();
        let x_true = lcg_vec(seed, n);
        let b = a.mul_vec(&x_true);
        let bnorm = norm2(&b).max(1.0);

        let op = StencilOperator::from_csr(&a, desc).expect("extraction");
        let options = RobustOptions {
            start_with_amg: true,
            start_with_mixed: true,
            ..RobustOptions::default()
        };
        let mut ws = SolveWorkspace::new();
        let (mut amg, mut amg_f32) = (None, None);
        let mixed = solve_robust_operator_ws(
            &a, Some(&op), &b, None, &options, &mut ws, &mut amg, &mut amg_f32,
        )
        .expect("mixed ladder must converge");

        let plain = solve_robust(
            &a,
            &b,
            None,
            &RobustOptions { start_with_amg: true, ..RobustOptions::default() },
        )
        .expect("f64 ladder must converge");

        prop_assert!(a.residual_norm(&mixed.x, &b) <= 1e-6 * bnorm);
        prop_assert!(a.residual_norm(&plain.x, &b) <= 1e-6 * bnorm);
        let xscale = plain.x.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        for (u, v) in mixed.x.iter().zip(&plain.x) {
            prop_assert!(
                (u - v).abs() <= 1e-4 * xscale,
                "mixed {} vs f64 {}", u, v
            );
        }
    }
}

/// Fixed three-plane stacked grid with two converter taps — the
/// deterministic fixture for the rung-acceptance and fallback tests.
fn fixture() -> (StencilDescriptor, CsrMatrix) {
    fixture_scaled(1.0)
}

/// Same fixture with every conductance scaled by `s`. Scaling the whole
/// matrix leaves its conditioning — and the f64 path — untouched while
/// letting tests push values past f32 range.
fn fixture_scaled(s: f64) -> (StencilDescriptor, CsrMatrix) {
    let desc = StencilDescriptor {
        nx: 12,
        ny: 12,
        planes: 3,
        interfaces: vec![true, false],
    };
    let n = desc.unknowns();
    let vert: Vec<f64> = (0..n).map(|i| s * (2.0 + (i % 7) as f64 * 0.25)).collect();
    let anchor: Vec<f64> = (0..n).map(|i| s * (0.5 + (i % 5) as f64 * 0.1)).collect();
    let taps = [(5, 300, 1.5 * s), (40, 350, 2.0 * s)];
    let a = stacked_grid(&desc, &[4.0 * s, 5.0 * s, 6.0 * s], &vert, &anchor, &taps);
    (desc, a)
}

/// The hot path end-to-end: with a stencil operator and `start_with_mixed`
/// the ladder accepts the mixed rung outright, reports the
/// `stencil`/`mixed` provenance, and needs at most 50% more CG iterations
/// than the pure-f64 AMG rung on the same system.
#[test]
fn mixed_rung_accepted_with_stencil_operator() {
    let (desc, a) = fixture();
    let n = desc.unknowns();
    let b = a.mul_vec(&lcg_vec(1, n));
    let op = StencilOperator::from_csr(&a, desc).expect("extraction");
    assert!(
        op.irregular_rows() > 0,
        "taps must demote rows to the side-CSR"
    );

    let options = RobustOptions {
        start_with_amg: true,
        start_with_mixed: true,
        ..RobustOptions::default()
    };
    let mut ws = SolveWorkspace::new();
    let (mut amg, mut amg_f32) = (None, None);
    let mixed = solve_robust_operator_ws(
        &a,
        Some(&op),
        &b,
        None,
        &options,
        &mut ws,
        &mut amg,
        &mut amg_f32,
    )
    .expect("mixed rung must converge");
    assert_eq!(mixed.report.method, SolveMethod::CgAmgMixed);
    assert_eq!(mixed.report.operator, "stencil");
    assert_eq!(mixed.report.precision, "mixed");
    assert!(
        mixed.report.fallbacks.is_empty(),
        "trail: {}",
        mixed.report.trail()
    );

    let plain = solve_robust(
        &a,
        &b,
        None,
        &RobustOptions {
            start_with_amg: true,
            ..RobustOptions::default()
        },
    )
    .expect("f64 rung must converge");
    assert_eq!(plain.report.method, SolveMethod::CgAmg);
    assert_eq!(plain.report.operator, "csr");
    assert_eq!(plain.report.precision, "f64");
    assert!(
        2 * mixed.report.iterations <= 3 * plain.report.iterations + 2,
        "mixed took {} iterations vs {} for f64 — more than +50%",
        mixed.report.iterations,
        plain.report.iterations
    );
}

/// Values beyond f32 range make the f32 V-cycle return a zero correction;
/// the outer CG breaks down deterministically and the ladder falls back
/// to the pure-f64 CSR rung, recording the abandoned mixed rung.
#[test]
fn f32_overflow_falls_back_to_pure_f64() {
    let (desc, a) = fixture_scaled(1e200);
    let n = desc.unknowns();
    let b = lcg_vec(2, n);
    let op = StencilOperator::from_csr(&a, desc).expect("extraction");

    let options = RobustOptions {
        start_with_amg: true,
        start_with_mixed: true,
        ..RobustOptions::default()
    };
    let mut ws = SolveWorkspace::new();
    let (mut amg, mut amg_f32) = (None, None);
    let sol = solve_robust_operator_ws(
        &a,
        Some(&op),
        &b,
        None,
        &options,
        &mut ws,
        &mut amg,
        &mut amg_f32,
    )
    .expect("f64 rung must rescue the solve");
    assert_eq!(sol.report.fallbacks[0].from, SolveMethod::CgAmgMixed);
    assert_eq!(sol.report.method, SolveMethod::CgAmg);
    assert_eq!(sol.report.operator, "csr");
    assert_eq!(sol.report.precision, "f64");
    let bnorm = norm2(&b).max(1.0);
    assert!(a.residual_norm(&sol.x, &b) <= 1e-6 * bnorm);
}

/// After a value restamp on the same pattern, `refresh_values_from`
/// re-extracts in place and the apply stays bit-identical to the new CSR.
#[test]
fn refresh_values_tracks_restamped_matrix() {
    let (desc, a1) = fixture();
    let n = desc.unknowns();
    let mut op = StencilOperator::from_csr(&a1, desc.clone()).expect("extraction");

    // Same geometry and tap pattern, different conductances.
    let vert: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
    let anchor: Vec<f64> = (0..n).map(|i| 0.25 + (i % 4) as f64 * 0.2).collect();
    let taps = [(5, 300, 0.75), (40, 350, 3.0)];
    let a2 = stacked_grid(&desc, &[7.0, 2.5, 3.25], &vert, &anchor, &taps);
    op.refresh_values_from(&a2).expect("refresh");

    let x = lcg_vec(3, n);
    let mut want = vec![0.0; n];
    a2.mul_vec_into(&x, &mut want);
    let mut got = vec![f64::NAN; n];
    op.mul_vec_into(&x, &mut got);
    for (w, g) in want.iter().zip(&got) {
        assert_eq!(w.to_bits(), g.to_bits());
    }
}

/// Rebuilding the AMG hierarchy on a warm workspace regrows nothing, and
/// the rebuilt hierarchy is bit-identical to the first.
#[test]
fn amg_rebuild_is_allocation_free_on_warm_workspace() {
    let desc = StencilDescriptor::single_plane(24);
    let n = desc.unknowns();
    let vert = vec![0.0; n];
    let anchor: Vec<f64> = (0..n).map(|i| 0.3 + (i % 6) as f64 * 0.1).collect();
    let a = stacked_grid(&desc, &[3.0], &vert, &anchor, &[]);

    let mut ws = SolveWorkspace::new();
    let h1 = AmgHierarchy::build_ws(&a, &AmgOptions::default(), &mut ws).expect("build");
    let after_first = ws.setup_regrowths();
    assert!(after_first > 0, "a cold workspace must grow at least once");
    let h2 = AmgHierarchy::build_ws(&a, &AmgOptions::default(), &mut ws).expect("rebuild");
    assert_eq!(
        ws.setup_regrowths(),
        after_first,
        "AMG re-setup on a warm workspace must not reallocate"
    );

    let r = lcg_vec(4, n);
    let (mut z1, mut z2) = (vec![0.0; n], vec![0.0; n]);
    h1.apply(&r, &mut z1);
    h2.apply(&r, &mut z2);
    for (u, v) in z1.iter().zip(&z2) {
        assert_eq!(u.to_bits(), v.to_bits());
    }
}

/// Re-running an IC(0)-preconditioned solve on a warm workspace re-factors
/// without regrowing the level-schedule scratch.
#[test]
fn ic_refactor_is_allocation_free_on_warm_workspace() {
    let desc = StencilDescriptor::single_plane(24);
    let n = desc.unknowns();
    let vert = vec![0.0; n];
    let anchor: Vec<f64> = (0..n).map(|i| 0.3 + (i % 6) as f64 * 0.1).collect();
    let a = stacked_grid(&desc, &[3.0], &vert, &anchor, &[]);
    let b = a.mul_vec(&lcg_vec(5, n));

    let options = CgOptions {
        preconditioner: Preconditioner::IncompleteCholesky,
        ..CgOptions::default()
    };
    let mut ws = SolveWorkspace::new();
    cg_with_guess_ws(&a, &b, None, &options, &mut ws).expect("first solve");
    let after_first = ws.setup_regrowths();
    assert!(after_first > 0, "a cold workspace must grow at least once");
    cg_with_guess_ws(&a, &b, None, &options, &mut ws).expect("second solve");
    assert_eq!(
        ws.setup_regrowths(),
        after_first,
        "IC(0) re-factorization on a warm workspace must not reallocate"
    );
}
