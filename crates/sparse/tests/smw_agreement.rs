//! SMW sketch vs `solve_robust` agreement.
//!
//! For random SPD grid systems — plain resistive grids with grounding
//! rails, and voltage-stacked-style systems with rank-1 converter stamps —
//! a rank-k SMW downdate of a cached baseline must agree with a fresh
//! `solve_robust` of the explicitly downdated matrix to ≤1e-9 relative
//! error, and the near-singular guard must refuse updates that disconnect
//! the system instead of returning garbage.

use std::sync::Arc;

use proptest::prelude::*;
use vstack_sparse::pool::{with_pool, ThreadPool};
use vstack_sparse::{
    solve_robust, CsrMatrix, RobustOptions, SmwRejection, SmwSketch, SmwUpdate, TripletMatrix,
};

/// Ingredients of one random test system.
struct GridSystem {
    /// Baseline matrix.
    a0: CsrMatrix,
    /// Baseline right-hand side.
    b0: Vec<f64>,
    /// `(node, conductance, rail_volts)` of every grounding rail.
    rails: Vec<(usize, f64, f64)>,
    /// `(lo, hi, conductance)` of every grid edge.
    edges: Vec<(usize, usize, f64)>,
}

/// An `nx × ny` resistive grid with `rails` grounding conductances and a
/// deterministic pseudo-random load current per node. With `stacked`, a
/// few rank-1 converter-style stamps (`g·uuᵀ`, `u = (1, −α, −(1−α))`) are
/// added so the system resembles the voltage-stacked PDN matrices.
fn grid_system(nx: usize, ny: usize, rail_picks: &[usize], stacked: bool) -> GridSystem {
    let n = nx * ny;
    let mut t = TripletMatrix::new(n, n);
    let mut edges = Vec::new();
    let stamp = |t: &mut TripletMatrix, a: usize, b: usize, g: f64| {
        t.push(a, a, g);
        t.push(b, b, g);
        t.push(a, b, -g);
        t.push(b, a, -g);
    };
    for j in 0..ny {
        for i in 0..nx {
            let a = j * nx + i;
            if i + 1 < nx {
                let g = 1.0 + 0.1 * ((a % 7) as f64);
                stamp(&mut t, a, a + 1, g);
                edges.push((a, a + 1, g));
            }
            if j + 1 < ny {
                let g = 1.0 + 0.1 * ((a % 5) as f64);
                stamp(&mut t, a, a + nx, g);
                edges.push((a, a + nx, g));
            }
        }
    }
    let mut b0 = vec![0.0; n];
    let mut rails = Vec::new();
    for (k, &pick) in rail_picks.iter().enumerate() {
        let node = pick % n;
        if rails.iter().any(|&(r, _, _)| r == node) {
            continue;
        }
        let g = 2.0 + 0.25 * k as f64;
        let v_rail = 1.0;
        t.push(node, node, g);
        b0[node] += g * v_rail;
        rails.push((node, g, v_rail));
    }
    if stacked {
        // Converter-style PSD rank-1 stamps between three distinct nodes.
        for k in 0..3 {
            let out = (7 * k + 1) % n;
            let top = (11 * k + 3) % n;
            let bottom = (13 * k + 5) % n;
            if out == top || out == bottom || top == bottom {
                continue;
            }
            let g = 0.5;
            let alpha = 0.35;
            let u = [(out, 1.0), (top, -alpha), (bottom, -(1.0 - alpha))];
            for &(i, ui) in &u {
                for &(j, uj) in &u {
                    t.push(i, j, g * ui * uj);
                }
            }
        }
    }
    for (i, b) in b0.iter_mut().enumerate() {
        *b += 1e-3 * (((i % 9) as f64) - 4.0);
    }
    GridSystem {
        a0: t.to_csr(),
        b0,
        rails,
        edges,
    }
}

fn tight_options() -> RobustOptions {
    RobustOptions {
        tolerance: 1e-12,
        max_iterations: 50_000,
        ..RobustOptions::default()
    }
}

fn rel_err(x: &[f64], y: &[f64]) -> f64 {
    let scale = y.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1e-30);
    x.iter()
        .zip(y)
        .fold(0.0f64, |m, (a, b)| m.max((a - b).abs()))
        / scale
}

/// Builds the sketch (tight baseline + columns solved on demand) for the
/// chosen rail and edge downdates, and the explicitly-downdated system.
#[allow(clippy::type_complexity)]
fn downdate(
    sys: &GridSystem,
    rail_frac: &[usize],
    edge_frac: &[usize],
) -> Option<(SmwSketch, Vec<SmwUpdate>, CsrMatrix, Vec<f64>)> {
    let n = sys.b0.len();
    let x0 = solve_robust(&sys.a0, &sys.b0, None, &tight_options())
        .ok()?
        .x;
    let mut sketch = SmwSketch::new(x0, sys.b0.clone(), 1e-9);
    let mut updates = Vec::new();
    let mut delta = TripletMatrix::new(n, n);
    let mut b_f = sys.b0.clone();
    // Keep at least one rail so the downdated system stays connected, and
    // never remove the same rail twice.
    let mut killed_rails = Vec::new();
    for &pick in rail_frac.iter().take(sys.rails.len().saturating_sub(1)) {
        let idx = pick % sys.rails.len();
        if killed_rails.contains(&idx) {
            continue;
        }
        killed_rails.push(idx);
        let (node, g, v_rail) = sys.rails[idx];
        let col = sketch.add_column(vec![(node, 1.0)]);
        updates.push(SmwUpdate {
            column: col,
            scale: g,
            rhs_delta: -g * v_rail,
        });
        delta.push(node, node, -g);
        b_f[node] -= g * v_rail;
    }
    for &pick in edge_frac {
        let (lo, hi, g) = sys.edges[pick % sys.edges.len()];
        let s = 0.5 * g; // halve the edge, never fully cut it
        let col = sketch.add_column(vec![(lo, 1.0), (hi, -1.0)]);
        updates.push(SmwUpdate {
            column: col,
            scale: s,
            rhs_delta: 0.0,
        });
        delta.push(lo, lo, -s);
        delta.push(hi, hi, -s);
        delta.push(lo, hi, s);
        delta.push(hi, lo, s);
    }
    if updates.is_empty() {
        return None;
    }
    let mut t = TripletMatrix::new(n, n);
    for r in 0..n {
        let (cols, vals) = sys.a0.row(r);
        for (&c, &v) in cols.iter().zip(vals) {
            t.push(r, c, v);
        }
    }
    for &(r, c, v) in delta.iter() {
        t.push(r, c, v);
    }
    for u in &updates {
        sketch
            .ensure_column(u.column, |rhs| {
                solve_robust(&sys.a0, rhs, None, &tight_options()).map(|s| s.x)
            })
            .ok()?;
    }
    Some((sketch, updates, t.to_csr(), b_f))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Rank-k downdates agree with a fresh robust solve of the explicitly
    /// modified system to ≤1e-9 relative error, on plain and stacked
    /// (converter-stamped) grids.
    #[test]
    fn smw_matches_solve_robust(
        nx in 4usize..9,
        ny in 4usize..9,
        rail_picks in prop::collection::vec(0usize..256, 2..6),
        rail_kills in prop::collection::vec(0usize..8, 0..3),
        edge_kills in prop::collection::vec(0usize..512, 0..4),
        stacked in 0usize..2,
    ) {
        let sys = grid_system(nx, ny, &rail_picks, stacked == 1);
        // `downdate` returning None (no effective update drawn) and a
        // NearSingular refusal (a legitimately weak surviving rail) both
        // leave nothing to check for this draw.
        if let Some((sketch, updates, a_f, b_f)) = downdate(&sys, &rail_kills, &edge_kills) {
            match sketch.query(&updates) {
                Ok(answer) => {
                    let exact = solve_robust(&a_f, &b_f, None, &tight_options())
                        .expect("downdated system solvable")
                        .x;
                    let rel = rel_err(&answer.x, &exact);
                    prop_assert!(rel <= 1e-9, "rel err {rel} (k = {})", updates.len());
                    prop_assert!(answer.rel_residual <= 1e-9);
                }
                Err(SmwRejection::NearSingular) => {}
                Err(e) => panic!("unexpected rejection {e}"),
            }
        }
    }

    /// Removing every rail disconnects the system; the capacitance-matrix
    /// guard must reject instead of answering.
    #[test]
    fn removing_all_rails_is_rejected(
        nx in 4usize..8,
        ny in 4usize..8,
        rail_picks in prop::collection::vec(0usize..256, 1..4),
    ) {
        let sys = grid_system(nx, ny, &rail_picks, false);
        let x0 = solve_robust(&sys.a0, &sys.b0, None, &tight_options()).unwrap().x;
        let mut sketch = SmwSketch::new(x0, sys.b0.clone(), 1e-9);
        let mut updates = Vec::new();
        for &(node, g, v_rail) in &sys.rails {
            let col = sketch.add_column(vec![(node, 1.0)]);
            updates.push(SmwUpdate { column: col, scale: g, rhs_delta: -g * v_rail });
        }
        for u in &updates {
            sketch
                .ensure_column(u.column, |rhs| {
                    solve_robust(&sys.a0, rhs, None, &tight_options()).map(|s| s.x)
                })
                .unwrap();
        }
        match sketch.query(&updates) {
            Err(SmwRejection::NearSingular) | Err(SmwRejection::ResidualTooLarge { .. }) => {}
            Ok(_) => panic!("disconnection answered, not rejected"),
            Err(e) => panic!("wrong rejection {e}"),
        }
    }
}

#[test]
fn smw_answers_are_bit_identical_across_thread_counts() {
    // The whole pipeline — baseline solve, column solves, SMW query — run
    // inside pools of 1, 2 and 4 contexts must agree bit for bit (the
    // solver's pairwise reductions are fixed-chunk; the SMW query is
    // serial dense algebra).
    let sys = grid_system(8, 7, &[3, 19, 40], true);
    let answers: Vec<Vec<f64>> = [1usize, 2, 4]
        .iter()
        .map(|&c| Arc::new(ThreadPool::new(c)))
        .map(|pool| {
            with_pool(&pool, || {
                let (sketch, updates, _, _) =
                    downdate(&sys, &[0, 1], &[5, 11]).expect("updates drawn");
                sketch.query(&updates).expect("answerable").x
            })
        })
        .collect();
    assert_eq!(answers[0], answers[1], "1 vs 2 threads");
    assert_eq!(answers[0], answers[2], "1 vs 4 threads");
}
