//! Property-based tests for the sparse kernels.

use std::sync::Arc;

use proptest::prelude::*;
use vstack_sparse::dense::DenseMatrix;
use vstack_sparse::ichol::IncompleteCholesky;
use vstack_sparse::pool::{with_pool, ThreadPool};
use vstack_sparse::robust::{solve_robust, RobustOptions, SolveMethod};
use vstack_sparse::solver::{
    bicgstab, cg, cg_with_guess_ws, BiCgStabOptions, CgOptions, Preconditioner,
};
use vstack_sparse::{vecops, CsrMatrix, SolveWorkspace, TripletMatrix};

/// Strategy: a random list of triplets inside an `n × n` matrix.
fn triplets(n: usize, max_entries: usize) -> impl Strategy<Value = Vec<(usize, usize, f64)>> {
    prop::collection::vec((0..n, 0..n, -10.0..10.0f64), 0..max_entries)
}

/// Strategy: a random SPD matrix built as `L Lᵀ + ε I` from a random sparse
/// lower-triangular factor — guaranteed symmetric positive definite.
fn spd_matrix(n: usize) -> impl Strategy<Value = CsrMatrix> {
    prop::collection::vec((0..n, 0..n, -2.0..2.0f64), 1..4 * n).prop_map(move |tris| {
        // Accumulate dense L (lower triangular incl. diagonal shift).
        let mut l = vec![vec![0.0; n]; n];
        for (r, c, v) in tris {
            let (r, c) = if r >= c { (r, c) } else { (c, r) };
            l[r][c] += v;
        }
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for (lik, ljk) in l[i].iter().zip(&l[j]) {
                    acc += lik * ljk;
                }
                if i == j {
                    acc += 1.0; // ε I keeps it strictly PD
                }
                if acc != 0.0 {
                    t.push(i, j, acc);
                }
            }
        }
        t.to_csr()
    })
}

/// Strategy: an SPD matrix whose leading 4×4 block is a scaled copy of
/// Kershaw's classic IC(0)-defeating pattern (zero-fill incomplete
/// Cholesky hits a negative pivot on it), embedded block-diagonally ahead
/// of a random SPD tail. The whole matrix is SPD and well-posed, but the
/// first escalation-ladder rung is guaranteed to fail.
fn ic0_defeating_spd(tail: usize) -> impl Strategy<Value = CsrMatrix> {
    (0.5..4.0f64, spd_matrix(tail)).prop_map(move |(scale, tail_m)| {
        let kershaw = [
            [3.0, -2.0, 0.0, 2.0],
            [-2.0, 3.0, -2.0, 0.0],
            [0.0, -2.0, 3.0, -2.0],
            [2.0, 0.0, -2.0, 3.0],
        ];
        let mut t = TripletMatrix::new(4 + tail, 4 + tail);
        for (r, row) in kershaw.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    t.push(r, c, scale * v);
                }
            }
        }
        for (r, c, v) in tail_m.iter() {
            t.push(4 + r, 4 + c, v);
        }
        t.to_csr()
    })
}

/// Strategy: an SPD `side`×`side` grid Laplacian with random edge
/// conductances, anchored corners, and `converters` random cross-grid
/// stamps — each one the rank-1 SPD update a voltage-stacked converter
/// tether contributes between non-adjacent rail nodes.
fn grid_spd(side: usize, converters: usize) -> impl Strategy<Value = CsrMatrix> {
    let n = side * side;
    (
        prop::collection::vec(1.0..30.0f64, 2 * n),
        prop::collection::vec((0..n, 0..n, 0.5..5.0f64), converters),
    )
        .prop_map(move |(edges, taps)| {
            let mut t = TripletMatrix::new(n, n);
            let mut e = edges.iter();
            for j in 0..side {
                for i in 0..side {
                    let a = j * side + i;
                    if i + 1 < side {
                        t.stamp_conductance(Some(a), Some(a + 1), *e.next().unwrap());
                    }
                    if j + 1 < side {
                        t.stamp_conductance(Some(a), Some(a + side), *e.next().unwrap());
                    }
                }
            }
            for corner in [0, side - 1, n - side, n - 1] {
                t.push(corner, corner, 100.0);
            }
            for &(p, q, g) in &taps {
                if p != q {
                    t.stamp_conductance(Some(p), Some(q), g);
                }
            }
            t.to_csr()
        })
}

/// Shared pools for the parallel bit-identity properties: spawning threads
/// per proptest case would dominate the runtime, and the pool is designed
/// to be shared.
fn pools() -> &'static [Arc<ThreadPool>] {
    static POOLS: std::sync::OnceLock<Vec<Arc<ThreadPool>>> = std::sync::OnceLock::new();
    POOLS.get_or_init(|| {
        [1, 2, 4]
            .iter()
            .map(|&c| Arc::new(ThreadPool::new(c)))
            .collect()
    })
}

proptest! {
    /// CSR matrix–vector product agrees with a dense reference product.
    #[test]
    fn csr_mul_matches_dense(tris in triplets(12, 60), x in prop::collection::vec(-5.0..5.0f64, 12)) {
        let m = CsrMatrix::from_triplets(12, 12, &tris);
        let dense = m.to_dense();
        let y = m.mul_vec(&x);
        for r in 0..12 {
            let want: f64 = dense[r].iter().zip(&x).map(|(a, b)| a * b).sum();
            prop_assert!((y[r] - want).abs() < 1e-9);
        }
    }

    /// Transposing twice is the identity.
    #[test]
    fn transpose_is_involution(tris in triplets(10, 50)) {
        let m = CsrMatrix::from_triplets(10, 10, &tris);
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    /// `(Aᵀ)x·y == x·(Ay)` — the adjoint identity.
    #[test]
    fn transpose_adjoint_identity(
        tris in triplets(8, 40),
        x in prop::collection::vec(-3.0..3.0f64, 8),
        y in prop::collection::vec(-3.0..3.0f64, 8),
    ) {
        let a = CsrMatrix::from_triplets(8, 8, &tris);
        let at = a.transpose();
        let lhs: f64 = at.mul_vec(&x).iter().zip(&y).map(|(u, v)| u * v).sum();
        let rhs: f64 = a.mul_vec(&y).iter().zip(&x).map(|(u, v)| u * v).sum();
        prop_assert!((lhs - rhs).abs() < 1e-8);
    }

    /// CG solves every randomly generated SPD system to tolerance.
    #[test]
    fn cg_solves_random_spd(a in spd_matrix(10), b in prop::collection::vec(-5.0..5.0f64, 10)) {
        let x = cg(&a, &b, &CgOptions::default()).expect("SPD system must converge");
        let bnorm: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        prop_assert!(a.residual_norm(&x, &b) <= 1e-7 * bnorm.max(1.0));
    }

    /// BiCGSTAB agrees with CG on SPD systems.
    #[test]
    fn bicgstab_agrees_with_cg(a in spd_matrix(8), b in prop::collection::vec(-2.0..2.0f64, 8)) {
        let x1 = cg(&a, &b, &CgOptions::default()).expect("cg");
        let x2 = bicgstab(&a, &b, &BiCgStabOptions::default()).expect("bicgstab");
        for (u, v) in x1.iter().zip(&x2) {
            prop_assert!((u - v).abs() < 1e-5);
        }
    }

    /// Dense LU solve then multiply reproduces the right-hand side.
    #[test]
    fn dense_lu_roundtrip(a in spd_matrix(6), b in prop::collection::vec(-4.0..4.0f64, 6)) {
        let mut d = DenseMatrix::zeros(6, 6);
        for (r, c, v) in a.iter() {
            d[(r, c)] += v;
        }
        let x = d.solve(&b).expect("SPD dense solve");
        let ax = d.mul_vec(&x);
        for (u, v) in ax.iter().zip(&b) {
            prop_assert!((u - v).abs() < 1e-8);
        }
    }

    /// Whenever IC(0) fails on a well-posed SPD system, `solve_robust`
    /// still recovers through the ladder — with a non-empty fallback trail
    /// whose first abandoned rung is the incomplete-Cholesky attempt, and
    /// a solution satisfying the original system.
    #[test]
    fn robust_rescues_ic0_failures(
        a in ic0_defeating_spd(6),
        x_true in prop::collection::vec(-3.0..3.0f64, 10),
    ) {
        let b = a.mul_vec(&x_true);
        let sol = solve_robust(&a, &b, None, &RobustOptions::default())
            .expect("SPD system must be rescued");
        prop_assert!(sol.report.was_rescued(), "trail: {}", sol.report.trail());
        prop_assert_eq!(
            sol.report.fallbacks[0].from,
            SolveMethod::CgIncompleteCholesky
        );
        let bnorm: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        prop_assert!(a.residual_norm(&sol.x, &b) <= 1e-6 * bnorm.max(1.0));
    }

    /// Triplet duplicate handling: pushing values one at a time or summed up
    /// front yields the same matrix.
    #[test]
    fn duplicate_sum_equivalence(vals in prop::collection::vec(-5.0..5.0f64, 1..20)) {
        let mut t1 = TripletMatrix::new(1, 1);
        for &v in &vals {
            t1.push(0, 0, v);
        }
        let mut t2 = TripletMatrix::new(1, 1);
        t2.push(0, 0, vals.iter().sum());
        let (a, b) = (t1.to_csr(), t2.to_csr());
        prop_assert!((a.get(0, 0) - b.get(0, 0)).abs() < 1e-9);
    }

    /// The row-partitioned parallel SpMV produces bit-for-bit the serial
    /// result at 1, 2 and 4 contexts, on random SPD matrices.
    #[test]
    fn par_mul_vec_bit_identical_to_serial(
        a in spd_matrix(24),
        x in prop::collection::vec(-3.0..3.0f64, 24),
    ) {
        let mut serial = vec![0.0; 24];
        a.mul_vec_into(&x, &mut serial);
        for pool in pools() {
            let mut par = vec![f64::NAN; 24];
            a.par_mul_vec_into(pool, &x, &mut par);
            for (s, p) in serial.iter().zip(&par) {
                prop_assert_eq!(s.to_bits(), p.to_bits());
            }
        }
    }

    /// The chunked tree-reduction dot product produces bit-for-bit the
    /// serial result at 1, 2 and 4 contexts, across chunk boundaries.
    #[test]
    fn par_dot_bit_identical_to_serial(
        xy in prop::collection::vec((-3.0..3.0f64, -3.0..3.0f64), 1..3000),
    ) {
        let (x, y): (Vec<f64>, Vec<f64>) = xy.into_iter().unzip();
        let serial = vecops::dot(&x, &y);
        for pool in pools() {
            let par = vecops::par_dot(pool, &x, &y);
            prop_assert_eq!(serial.to_bits(), par.to_bits());
        }
    }

    /// The level-scheduled parallel IC(0) application produces bit-for-bit
    /// the serial forward/backward substitution, whenever the random SPD
    /// matrix admits an IC(0) factorization.
    #[test]
    fn par_ic0_apply_bit_identical_to_serial(
        a in spd_matrix(16),
        r in prop::collection::vec(-3.0..3.0f64, 16),
    ) {
        if let Ok(ic) = IncompleteCholesky::factor(&a) {
            let mut serial = vec![0.0; 16];
            ic.apply(&r, &mut serial);
            for pool in pools() {
                let mut par = vec![f64::NAN; 16];
                ic.par_apply(pool, &r, &mut par);
                for (s, p) in serial.iter().zip(&par) {
                    prop_assert_eq!(s.to_bits(), p.to_bits());
                }
            }
        }
    }

    /// AMG-preconditioned CG converges on random grid Laplacians to the
    /// same solution Jacobi-preconditioned CG finds. 400 unknowns is past
    /// `direct_max`, so a genuine coarse level is built and cycled.
    #[test]
    fn amg_cg_agrees_with_jacobi_cg_on_grids(
        a in grid_spd(20, 0),
        b in prop::collection::vec(-2.0..2.0f64, 400),
    ) {
        let jac = cg(&a, &b, &CgOptions::default()).expect("jacobi cg");
        let amg_opts = CgOptions {
            preconditioner: Preconditioner::Amg,
            ..CgOptions::default()
        };
        let amg = cg(&a, &b, &amg_opts).expect("amg cg");
        for (u, v) in jac.iter().zip(&amg) {
            prop_assert!((u - v).abs() < 1e-5);
        }
    }

    /// The same agreement holds when the grid carries converter-style
    /// rank-1 cross stamps, as the voltage-stacked PDN matrices do.
    #[test]
    fn amg_cg_agrees_with_jacobi_cg_on_converter_grids(
        a in grid_spd(20, 4),
        b in prop::collection::vec(-2.0..2.0f64, 400),
    ) {
        let jac = cg(&a, &b, &CgOptions::default()).expect("jacobi cg");
        let amg_opts = CgOptions {
            preconditioner: Preconditioner::Amg,
            ..CgOptions::default()
        };
        let amg = cg(&a, &b, &amg_opts).expect("amg cg");
        for (u, v) in jac.iter().zip(&amg) {
            prop_assert!((u - v).abs() < 1e-5);
        }
    }

    /// One `SolveWorkspace` reused across systems of different sizes and
    /// patterns resizes correctly: every solve through it is bit-identical
    /// to a fresh-workspace solve of the same system.
    #[test]
    fn workspace_reuse_across_patterns_is_bit_identical(
        a1 in spd_matrix(8),
        b1 in prop::collection::vec(-4.0..4.0f64, 8),
        a2 in spd_matrix(13),
        b2 in prop::collection::vec(-4.0..4.0f64, 13),
    ) {
        let opts = CgOptions::default();
        let mut ws = SolveWorkspace::new();
        for (a, b) in [(&a1, &b1), (&a2, &b2), (&a1, &b1)] {
            let fresh = cg(a, b, &opts).expect("SPD system must converge");
            let reused = cg_with_guess_ws(a, b, None, &opts, &mut ws)
                .expect("SPD system must converge")
                .x;
            for (f, r) in fresh.iter().zip(&reused) {
                prop_assert_eq!(f.to_bits(), r.to_bits());
            }
        }
    }
}

proptest! {
    // Few cases: each one builds an AMG hierarchy on a 7 396-unknown grid
    // (big enough that `mul_vec_into` routes through the pool) and solves
    // it under three pool widths.
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// A `Preconditioner::Amg` CG solve is bit-for-bit identical at 1, 2
    /// and 4 pool contexts — hierarchy construction is serial and the
    /// V-cycle's parallel SpMV is bit-identical by design.
    #[test]
    fn amg_cg_bit_identical_across_pools(a in grid_spd(86, 2)) {
        let n = 86 * 86;
        let b: Vec<f64> = (0..n).map(|i| ((i % 11) as f64 - 5.0) * 1e-3).collect();
        let opts = CgOptions {
            preconditioner: Preconditioner::Amg,
            ..CgOptions::default()
        };
        let mut reference: Option<(Vec<f64>, usize)> = None;
        for pool in pools() {
            let solved = with_pool(pool, || {
                let mut ws = SolveWorkspace::new();
                cg_with_guess_ws(&a, &b, None, &opts, &mut ws)
            })
            .expect("amg cg");
            match &reference {
                None => reference = Some((solved.x, solved.iterations)),
                Some((x0, it0)) => {
                    prop_assert_eq!(*it0, solved.iterations);
                    for (u, v) in x0.iter().zip(&solved.x) {
                        prop_assert_eq!(u.to_bits(), v.to_bits());
                    }
                }
            }
        }
    }
}
