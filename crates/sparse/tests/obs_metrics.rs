//! Exact-count checks of the global `vstack-obs` metrics registry against
//! the escalation ladder.
//!
//! The registry is process-wide, so this file holds a **single** test:
//! `cargo test` runs each integration-test binary as its own process, and
//! with one test in the binary no sibling thread can bump the counters
//! between our before/after reads. Do not add more `#[test]`s here —
//! start another single-test file instead.

use vstack_obs::metrics::global;
use vstack_sparse::{solve_robust, CsrMatrix, RobustOptions, SolveMethod, TripletMatrix};

/// Kershaw's 4×4 SPD matrix: zero-fill incomplete Cholesky breaks down
/// with a negative pivot, forcing at least one ladder escalation.
fn kershaw() -> CsrMatrix {
    let vals = [
        [3.0, -2.0, 0.0, 2.0],
        [-2.0, 3.0, -2.0, 0.0],
        [0.0, -2.0, 3.0, -2.0],
        [2.0, 0.0, -2.0, 3.0],
    ];
    let mut t = TripletMatrix::new(4, 4);
    for (r, row) in vals.iter().enumerate() {
        for (c, &v) in row.iter().enumerate() {
            if v != 0.0 {
                t.push(r, c, v);
            }
        }
    }
    t.to_csr()
}

/// 1-D grounded Laplacian: solves on the first rung, no escalation.
fn laplacian_1d(n: usize) -> CsrMatrix {
    let mut t = TripletMatrix::new(n, n);
    for i in 0..n {
        t.push(i, i, if i == 0 { 3.0 } else { 2.0 });
        if i + 1 < n {
            t.push(i, i + 1, -1.0);
            t.push(i + 1, i, -1.0);
        }
    }
    t.to_csr()
}

#[test]
fn ladder_counters_move_in_lock_step_with_solve_reports() {
    let m = global();
    let opts = RobustOptions::default();

    // A healthy solve: one ladder entry, zero escalations, zero rescues.
    let before = (
        m.ladder_solves.get(),
        m.ladder_escalations.get(),
        m.ladder_rescued.get(),
    );
    let a = laplacian_1d(50);
    let sol = solve_robust(&a, &vec![1.0; 50], None, &opts).expect("healthy solve");
    assert!(sol.report.fallbacks.is_empty());
    assert_eq!(m.ladder_solves.get(), before.0 + 1);
    assert_eq!(m.ladder_escalations.get(), before.1);
    assert_eq!(m.ladder_rescued.get(), before.2);

    // Kershaw defeats IC(0): the escalation counter must advance by
    // exactly the number of recorded fallback steps, and the rescue
    // counter by exactly one.
    let before = (
        m.ladder_solves.get(),
        m.ladder_escalations.get(),
        m.ladder_rescued.get(),
    );
    let a = kershaw();
    let b = a.mul_vec(&[1.0, 2.0, -1.0, 0.5]);
    let sol = solve_robust(&a, &b, None, &opts).expect("rescued solve");
    assert!(!sol.report.fallbacks.is_empty(), "{}", sol.report.trail());
    assert_eq!(
        sol.report.fallbacks[0].from,
        SolveMethod::CgIncompleteCholesky
    );
    assert_eq!(m.ladder_solves.get(), before.0 + 1);
    assert_eq!(
        m.ladder_escalations.get(),
        before.1 + sol.report.fallbacks.len() as u64,
        "one escalation per recorded fallback step: {}",
        sol.report.trail()
    );
    assert_eq!(m.ladder_rescued.get(), before.2 + 1);

    // A zero diagonal defeats IC(0) *and* Jacobi: still exactly one
    // counter tick per fallback step, across a deeper trail.
    let before = m.ladder_escalations.get();
    let a = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 1.0), (1, 1, 1.0)]);
    let sol = solve_robust(&a, &[2.0, 5.0], None, &opts).expect("bicgstab rescue");
    assert!(sol.report.fallbacks.len() >= 2, "{}", sol.report.trail());
    assert_eq!(
        m.ladder_escalations.get(),
        before + sol.report.fallbacks.len() as u64
    );

    // The snapshot serialization sees the same values the accessors do.
    let snapshot = vstack_obs::metrics::snapshot_json();
    assert!(snapshot.contains(&format!(
        "\"ladder_escalations\":{}",
        m.ladder_escalations.get()
    )));
}
