use crate::netlist::NodeId;

/// Identifies an element within its [`crate::Circuit`], returned by the
/// element-builder methods. Use it to query branch currents from an
/// operating point or transient result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ElementId(pub(crate) usize);

/// Which half of the two-phase, non-overlapping clock closes a switch.
///
/// Switched-capacitor converters toggle their switch banks on complementary
/// clock phases (`CLK1`/`CLK2` in the paper's Fig 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SwitchPhase {
    /// Closed during the first half-period (`CLK1` high).
    A,
    /// Closed during the second half-period (`CLK2` high).
    B,
    /// Always closed (useful for modelling bypass/hold switches).
    AlwaysOn,
}

impl SwitchPhase {
    /// Whether a switch on this phase is conducting when phase-A is active.
    pub fn closed_in_phase_a(self) -> bool {
        matches!(self, SwitchPhase::A | SwitchPhase::AlwaysOn)
    }

    /// Whether a switch on this phase is conducting when phase-B is active.
    pub fn closed_in_phase_b(self) -> bool {
        matches!(self, SwitchPhase::B | SwitchPhase::AlwaysOn)
    }
}

/// Circuit element. Stored flat inside [`crate::Circuit`].
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Element {
    Resistor {
        a: NodeId,
        b: NodeId,
        ohms: f64,
    },
    Capacitor {
        a: NodeId,
        b: NodeId,
        farads: f64,
        /// Initial voltage `v(a) − v(b)` at `t = 0`.
        initial_volts: f64,
    },
    /// Current flows *from* `from` *to* `to` through the source (i.e. the
    /// source injects current into `to` and extracts it from `from`).
    CurrentSource {
        from: NodeId,
        to: NodeId,
        amps: f64,
    },
    /// Ideal voltage source: `v(plus) − v(minus) = volts`. Adds one MNA
    /// branch-current unknown.
    VoltageSource {
        plus: NodeId,
        minus: NodeId,
        volts: f64,
        /// Index into the branch-current unknowns.
        branch: usize,
    },
    /// Voltage-controlled voltage source:
    /// `v(plus) − v(minus) = Σ gain_i · (v(ctrl_plus_i) − v(ctrl_minus_i))`.
    /// Supports multiple controlling ports so the SC converter's
    /// `(V_top + V_bottom)/2` output law is a single element.
    Vcvs {
        plus: NodeId,
        minus: NodeId,
        controls: Vec<(NodeId, NodeId, f64)>,
        branch: usize,
    },
    /// Clocked switch: resistance `r_on` when its phase is active, `r_off`
    /// otherwise.
    Switch {
        a: NodeId,
        b: NodeId,
        r_on: f64,
        r_off: f64,
        phase: SwitchPhase,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switch_phase_truth_table() {
        assert!(SwitchPhase::A.closed_in_phase_a());
        assert!(!SwitchPhase::A.closed_in_phase_b());
        assert!(!SwitchPhase::B.closed_in_phase_a());
        assert!(SwitchPhase::B.closed_in_phase_b());
        assert!(SwitchPhase::AlwaysOn.closed_in_phase_a());
        assert!(SwitchPhase::AlwaysOn.closed_in_phase_b());
    }
}
