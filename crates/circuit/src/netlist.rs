use std::collections::HashMap;

use crate::element::{Element, ElementId, SwitchPhase};
use crate::mna::{self, PhaseState};
use crate::CircuitError;

/// Handle to a circuit node. Obtain via [`Circuit::node`] or
/// [`Circuit::new_node`]; compare against [`GROUND`] for the reference node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

/// The reference (ground) node. Always exists, always at 0 V.
pub const GROUND: NodeId = NodeId(0);

/// A flat netlist of circuit elements plus analysis entry points.
///
/// Build the circuit with the element methods ([`Circuit::resistor`],
/// [`Circuit::capacitor`], [`Circuit::current_source`],
/// [`Circuit::voltage_source`], [`Circuit::vcvs`], [`Circuit::switch`]),
/// then run [`Circuit::dc_operating_point`] or a
/// [`crate::transient::Transient`] analysis.
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    pub(crate) node_names: Vec<String>,
    name_map: HashMap<String, NodeId>,
    pub(crate) elements: Vec<Element>,
    pub(crate) n_branches: usize,
}

impl Circuit {
    /// Creates an empty circuit containing only the ground node.
    pub fn new() -> Self {
        Circuit {
            node_names: vec!["0".to_owned()],
            name_map: HashMap::new(),
            elements: Vec::new(),
            n_branches: 0,
        }
    }

    /// Returns the node with the given name, creating it if necessary.
    /// The names `"0"` and `"gnd"` refer to [`GROUND`].
    pub fn node(&mut self, name: &str) -> NodeId {
        if name == "0" || name.eq_ignore_ascii_case("gnd") {
            return GROUND;
        }
        if let Some(&id) = self.name_map.get(name) {
            return id;
        }
        let id = NodeId(self.node_names.len());
        self.node_names.push(name.to_owned());
        self.name_map.insert(name.to_owned(), id);
        id
    }

    /// Creates a fresh anonymous node.
    pub fn new_node(&mut self) -> NodeId {
        let id = NodeId(self.node_names.len());
        self.node_names.push(format!("n{}", id.0));
        id
    }

    /// Total number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Number of elements added so far.
    pub fn element_count(&self) -> usize {
        self.elements.len()
    }

    /// Name of a node (ground is `"0"`).
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to this circuit.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.node_names[node.0]
    }

    fn push(&mut self, e: Element) -> ElementId {
        let id = ElementId(self.elements.len());
        self.elements.push(e);
        id
    }

    /// Adds a resistor of `ohms` between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `ohms` is not finite and strictly positive.
    pub fn resistor(&mut self, a: NodeId, b: NodeId, ohms: f64) -> ElementId {
        assert!(
            ohms.is_finite() && ohms > 0.0,
            "resistor must have finite positive resistance, got {ohms}"
        );
        self.push(Element::Resistor { a, b, ohms })
    }

    /// Adds a capacitor of `farads` between `a` and `b` with zero initial
    /// voltage. Use [`Circuit::capacitor_with_ic`] to set an initial
    /// condition.
    ///
    /// # Panics
    ///
    /// Panics if `farads` is not finite and strictly positive.
    pub fn capacitor(&mut self, a: NodeId, b: NodeId, farads: f64) -> ElementId {
        self.capacitor_with_ic(a, b, farads, 0.0)
    }

    /// Adds a capacitor with initial voltage `v(a) − v(b) = initial_volts`.
    ///
    /// # Panics
    ///
    /// Panics if `farads` is not finite and strictly positive, or
    /// `initial_volts` is not finite.
    pub fn capacitor_with_ic(
        &mut self,
        a: NodeId,
        b: NodeId,
        farads: f64,
        initial_volts: f64,
    ) -> ElementId {
        assert!(
            farads.is_finite() && farads > 0.0,
            "capacitor must have finite positive capacitance, got {farads}"
        );
        assert!(initial_volts.is_finite(), "initial voltage must be finite");
        self.push(Element::Capacitor {
            a,
            b,
            farads,
            initial_volts,
        })
    }

    /// Adds an ideal current source driving `amps` from `from` to `to`
    /// (current is injected into `to`).
    ///
    /// # Panics
    ///
    /// Panics if `amps` is not finite.
    pub fn current_source(&mut self, from: NodeId, to: NodeId, amps: f64) -> ElementId {
        assert!(amps.is_finite(), "source current must be finite");
        self.push(Element::CurrentSource { from, to, amps })
    }

    /// Adds an ideal voltage source enforcing `v(plus) − v(minus) = volts`.
    ///
    /// The branch current (flowing from `plus` through the source to
    /// `minus`) becomes an MNA unknown retrievable via
    /// [`OperatingPoint::branch_current`].
    ///
    /// # Panics
    ///
    /// Panics if `volts` is not finite.
    pub fn voltage_source(&mut self, plus: NodeId, minus: NodeId, volts: f64) -> ElementId {
        assert!(volts.is_finite(), "source voltage must be finite");
        let branch = self.n_branches;
        self.n_branches += 1;
        self.push(Element::VoltageSource {
            plus,
            minus,
            volts,
            branch,
        })
    }

    /// Adds a voltage-controlled voltage source:
    /// `v(plus) − v(minus) = Σᵢ gainᵢ · (v(cpᵢ) − v(cmᵢ))`.
    ///
    /// Multiple controlling ports let the SC-converter law
    /// `V_out = ½·V_top + ½·V_bottom` be expressed as one element.
    ///
    /// # Panics
    ///
    /// Panics if any gain is not finite or `controls` is empty.
    pub fn vcvs(
        &mut self,
        plus: NodeId,
        minus: NodeId,
        controls: &[(NodeId, NodeId, f64)],
    ) -> ElementId {
        assert!(!controls.is_empty(), "vcvs needs at least one control port");
        assert!(
            controls.iter().all(|&(_, _, g)| g.is_finite()),
            "vcvs gains must be finite"
        );
        let branch = self.n_branches;
        self.n_branches += 1;
        self.push(Element::Vcvs {
            plus,
            minus,
            controls: controls.to_vec(),
            branch,
        })
    }

    /// Adds a clocked switch between `a` and `b` with on-resistance `r_on`
    /// and off-resistance `r_off`, closed during `phase`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < r_on < r_off` and both are finite.
    pub fn switch(
        &mut self,
        a: NodeId,
        b: NodeId,
        r_on: f64,
        r_off: f64,
        phase: SwitchPhase,
    ) -> ElementId {
        assert!(
            r_on.is_finite() && r_off.is_finite() && r_on > 0.0 && r_off > r_on,
            "switch requires 0 < r_on < r_off, got r_on={r_on}, r_off={r_off}"
        );
        self.push(Element::Switch {
            a,
            b,
            r_on,
            r_off,
            phase,
        })
    }

    /// Computes the DC operating point with phase-A switches closed
    /// (capacitors open).
    ///
    /// # Errors
    ///
    /// [`CircuitError::Solve`] if the MNA matrix is singular (floating
    /// nodes, voltage-source loops).
    pub fn dc_operating_point(&self) -> Result<OperatingPoint, CircuitError> {
        self.dc_operating_point_in_phase(PhaseLabel::A)
    }

    /// Computes the DC operating point with the given clock phase active.
    ///
    /// # Errors
    ///
    /// Same as [`Circuit::dc_operating_point`].
    pub fn dc_operating_point_in_phase(
        &self,
        phase: PhaseLabel,
    ) -> Result<OperatingPoint, CircuitError> {
        let state = match phase {
            PhaseLabel::A => PhaseState::A,
            PhaseLabel::B => PhaseState::B,
        };
        let (matrix, rhs) = mna::assemble_dc(self, state);
        let x = matrix.solve(&rhs)?;
        Ok(OperatingPoint::from_solution(self, &x))
    }
}

/// Publicly nameable clock phase for DC analyses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseLabel {
    /// First half-period (`CLK1`).
    A,
    /// Second half-period (`CLK2`).
    B,
}

/// Result of a DC analysis: node voltages and branch currents.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatingPoint {
    /// Voltage per node, indexed by `NodeId.0`; ground is entry 0 (0 V).
    voltages: Vec<f64>,
    /// Branch currents of voltage sources / VCVS, indexed by branch number.
    branch_currents: Vec<f64>,
    /// Maps element index → branch number for quick current lookup.
    branch_of_element: HashMap<usize, usize>,
}

impl OperatingPoint {
    pub(crate) fn from_solution(circuit: &Circuit, x: &[f64]) -> Self {
        let n_nodes = circuit.node_count();
        let mut voltages = vec![0.0; n_nodes];
        voltages[1..n_nodes].copy_from_slice(&x[..n_nodes - 1]);
        let mut branch_currents = vec![0.0; circuit.n_branches];
        for (b, bc) in branch_currents.iter_mut().enumerate() {
            *bc = x[n_nodes - 1 + b];
        }
        let mut branch_of_element = HashMap::new();
        for (idx, e) in circuit.elements.iter().enumerate() {
            match e {
                Element::VoltageSource { branch, .. } | Element::Vcvs { branch, .. } => {
                    branch_of_element.insert(idx, *branch);
                }
                _ => {}
            }
        }
        OperatingPoint {
            voltages,
            branch_currents,
            branch_of_element,
        }
    }

    /// Voltage at `node` (ground returns 0).
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to the analyzed circuit.
    pub fn voltage(&self, node: NodeId) -> f64 {
        self.voltages[node.0]
    }

    /// Branch current through a voltage source or VCVS, flowing from its
    /// `plus` terminal through the element to `minus`. Returns `None` for
    /// elements without a branch unknown (resistors, capacitors, ...).
    pub fn branch_current(&self, element: ElementId) -> Option<f64> {
        self.branch_of_element
            .get(&element.0)
            .map(|&b| self.branch_currents[b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_interning_is_stable() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let a2 = c.node("a");
        assert_eq!(a, a2);
        assert_eq!(c.node("gnd"), GROUND);
        assert_eq!(c.node("0"), GROUND);
        assert_eq!(c.node_count(), 2);
    }

    #[test]
    fn divider_dc() {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let mid = c.node("mid");
        c.voltage_source(vin, GROUND, 3.0);
        c.resistor(vin, mid, 2_000.0);
        c.resistor(mid, GROUND, 1_000.0);
        let op = c.dc_operating_point().unwrap();
        assert!((op.voltage(mid) - 1.0).abs() < 1e-9);
        assert!((op.voltage(vin) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn voltage_source_branch_current() {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let vs = c.voltage_source(vin, GROUND, 10.0);
        c.resistor(vin, GROUND, 5.0);
        let op = c.dc_operating_point().unwrap();
        // 2 A flows out of the + terminal into the resistor, so the branch
        // current (plus → through source → minus) is −2 A.
        assert!((op.branch_current(vs).unwrap() + 2.0).abs() < 1e-9);
    }

    #[test]
    fn current_source_into_resistor() {
        let mut c = Circuit::new();
        let n = c.node("n");
        c.current_source(GROUND, n, 0.5);
        c.resistor(n, GROUND, 10.0);
        let op = c.dc_operating_point().unwrap();
        assert!((op.voltage(n) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn vcvs_enforces_control_law() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        let out = c.node("out");
        c.voltage_source(a, GROUND, 2.0);
        c.voltage_source(b, GROUND, 1.0);
        // out = 0.5 a + 0.5 b = 1.5
        c.vcvs(out, GROUND, &[(a, GROUND, 0.5), (b, GROUND, 0.5)]);
        c.resistor(out, GROUND, 100.0);
        let op = c.dc_operating_point().unwrap();
        assert!((op.voltage(out) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn switch_phase_affects_dc() {
        let mut c = Circuit::new();
        let n = c.node("n");
        c.current_source(GROUND, n, 1.0);
        c.switch(n, GROUND, 1.0, 1e9, SwitchPhase::A);
        let op_a = c.dc_operating_point_in_phase(PhaseLabel::A).unwrap();
        let op_b = c.dc_operating_point_in_phase(PhaseLabel::B).unwrap();
        assert!((op_a.voltage(n) - 1.0).abs() < 1e-9);
        assert!(op_b.voltage(n) > 1e8);
    }

    #[test]
    fn capacitor_open_in_dc() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.voltage_source(a, GROUND, 1.0);
        c.resistor(a, b, 1_000.0);
        c.capacitor(b, GROUND, 1e-9);
        // b floats through the cap; add bleed resistor to keep it solvable.
        c.resistor(b, GROUND, 1e9);
        let op = c.dc_operating_point().unwrap();
        assert!((op.voltage(b) - 1.0).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "positive resistance")]
    fn negative_resistor_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.resistor(a, GROUND, -5.0);
    }

    #[test]
    #[should_panic(expected = "r_on < r_off")]
    fn bad_switch_resistances_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.switch(a, GROUND, 10.0, 1.0, SwitchPhase::A);
    }

    #[test]
    fn floating_node_reports_singular() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.voltage_source(a, GROUND, 1.0);
        c.resistor(a, GROUND, 10.0);
        // b touches only one capacitor → floating in DC.
        c.capacitor(b, GROUND, 1e-9);
        let err = c.dc_operating_point().unwrap_err();
        assert!(matches!(err, CircuitError::Solve(_)));
    }
}
