//! Modified-nodal-analysis assembly.
//!
//! Unknown ordering: `[v₁ … v_{N−1}, i_b₀ … i_b_{M−1}]` — node voltages for
//! every node except ground, then one branch current per voltage source /
//! VCVS in creation order.

use vstack_sparse::dense::DenseMatrix;

use crate::element::Element;
use crate::netlist::{Circuit, NodeId};

/// Internal clock-phase state used during assembly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum PhaseState {
    A,
    B,
}

impl PhaseState {
    fn switch_closed(self, phase: crate::element::SwitchPhase) -> bool {
        match self {
            PhaseState::A => phase.closed_in_phase_a(),
            PhaseState::B => phase.closed_in_phase_b(),
        }
    }
}

/// Maps a node to its unknown index (ground has none).
fn unknown(node: NodeId) -> Option<usize> {
    if node.0 == 0 {
        None
    } else {
        Some(node.0 - 1)
    }
}

fn stamp_conductance(m: &mut DenseMatrix, a: NodeId, b: NodeId, g: f64) {
    let (ia, ib) = (unknown(a), unknown(b));
    if let Some(i) = ia {
        m[(i, i)] += g;
    }
    if let Some(j) = ib {
        m[(j, j)] += g;
    }
    if let (Some(i), Some(j)) = (ia, ib) {
        m[(i, j)] -= g;
        m[(j, i)] -= g;
    }
}

fn stamp_current(rhs: &mut [f64], from: NodeId, to: NodeId, amps: f64) {
    if let Some(i) = unknown(to) {
        rhs[i] += amps;
    }
    if let Some(i) = unknown(from) {
        rhs[i] -= amps;
    }
}

/// Assembly context shared by DC and transient.
pub(crate) struct Assembly {
    pub matrix: DenseMatrix,
    pub rhs: Vec<f64>,
    n_node_unknowns: usize,
}

impl Assembly {
    fn new(circuit: &Circuit) -> Self {
        let n_node_unknowns = circuit.node_count() - 1;
        let dim = n_node_unknowns + circuit.n_branches;
        Assembly {
            matrix: DenseMatrix::zeros(dim, dim),
            rhs: vec![0.0; dim],
            n_node_unknowns,
        }
    }

    fn branch_row(&self, branch: usize) -> usize {
        self.n_node_unknowns + branch
    }

    /// Stamps every element. `cap` controls how capacitors are handled:
    /// `None` → open (DC); `Some((dt, v_prev_fn))` → backward-Euler
    /// companion model with previous capacitor voltage from the callback.
    fn stamp_all(
        &mut self,
        circuit: &Circuit,
        phase: PhaseState,
        cap: Option<(f64, &dyn Fn(usize) -> f64)>,
    ) {
        for (idx, e) in circuit.elements.iter().enumerate() {
            match e {
                Element::Resistor { a, b, ohms } => {
                    stamp_conductance(&mut self.matrix, *a, *b, 1.0 / ohms);
                }
                Element::Switch {
                    a,
                    b,
                    r_on,
                    r_off,
                    phase: sw_phase,
                } => {
                    let r = if phase.switch_closed(*sw_phase) {
                        *r_on
                    } else {
                        *r_off
                    };
                    stamp_conductance(&mut self.matrix, *a, *b, 1.0 / r);
                }
                Element::Capacitor { a, b, farads, .. } => {
                    if let Some((dt, v_prev)) = cap {
                        let g = farads / dt;
                        stamp_conductance(&mut self.matrix, *a, *b, g);
                        // The companion current source injects g·v_prev into
                        // `a` and extracts it from `b`.
                        stamp_current(&mut self.rhs, *b, *a, g * v_prev(idx));
                    }
                }
                Element::CurrentSource { from, to, amps } => {
                    stamp_current(&mut self.rhs, *from, *to, *amps);
                }
                Element::VoltageSource {
                    plus,
                    minus,
                    volts,
                    branch,
                } => {
                    let row = self.branch_row(*branch);
                    if let Some(i) = unknown(*plus) {
                        self.matrix[(i, row)] += 1.0;
                        self.matrix[(row, i)] += 1.0;
                    }
                    if let Some(i) = unknown(*minus) {
                        self.matrix[(i, row)] -= 1.0;
                        self.matrix[(row, i)] -= 1.0;
                    }
                    self.rhs[row] = *volts;
                }
                Element::Vcvs {
                    plus,
                    minus,
                    controls,
                    branch,
                } => {
                    let row = self.branch_row(*branch);
                    if let Some(i) = unknown(*plus) {
                        self.matrix[(i, row)] += 1.0;
                        self.matrix[(row, i)] += 1.0;
                    }
                    if let Some(i) = unknown(*minus) {
                        self.matrix[(i, row)] -= 1.0;
                        self.matrix[(row, i)] -= 1.0;
                    }
                    for &(cp, cm, gain) in controls {
                        if let Some(i) = unknown(cp) {
                            self.matrix[(row, i)] -= gain;
                        }
                        if let Some(i) = unknown(cm) {
                            self.matrix[(row, i)] += gain;
                        }
                    }
                }
            }
        }
    }
}

/// Assembles the DC system (capacitors open).
pub(crate) fn assemble_dc(circuit: &Circuit, phase: PhaseState) -> (DenseMatrix, Vec<f64>) {
    let mut asm = Assembly::new(circuit);
    asm.stamp_all(circuit, phase, None);
    (asm.matrix, asm.rhs)
}

/// Assembles the backward-Euler transient matrix for a given phase and
/// timestep. The matrix depends only on `(phase, dt)`; the right-hand side
/// must be rebuilt every step via [`assemble_transient_rhs`].
pub(crate) fn assemble_transient_matrix(
    circuit: &Circuit,
    phase: PhaseState,
    dt: f64,
) -> DenseMatrix {
    let mut asm = Assembly::new(circuit);
    // v_prev contributions go to the RHS only; pass a zero callback.
    asm.stamp_all(circuit, phase, Some((dt, &|_| 0.0)));
    asm.matrix
}

/// Assembles the transient right-hand side for one timestep.
///
/// `cap_v_prev(element_index)` must return the capacitor voltage
/// `v(a) − v(b)` at the previous timestep.
pub(crate) fn assemble_transient_rhs(
    circuit: &Circuit,
    dt: f64,
    cap_v_prev: &dyn Fn(usize) -> f64,
) -> Vec<f64> {
    let n_node_unknowns = circuit.node_count() - 1;
    let dim = n_node_unknowns + circuit.n_branches;
    let mut rhs = vec![0.0; dim];
    for (idx, e) in circuit.elements.iter().enumerate() {
        match e {
            Element::Capacitor { a, b, farads, .. } => {
                let g = farads / dt;
                stamp_current(&mut rhs, *b, *a, g * cap_v_prev(idx));
            }
            Element::CurrentSource { from, to, amps } => {
                stamp_current(&mut rhs, *from, *to, *amps);
            }
            Element::VoltageSource { volts, branch, .. } => {
                rhs[n_node_unknowns + branch] = *volts;
            }
            _ => {}
        }
    }
    rhs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::GROUND;

    #[test]
    fn dc_matrix_shape_includes_branches() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.voltage_source(a, GROUND, 1.0);
        c.resistor(a, GROUND, 1.0);
        let (m, rhs) = assemble_dc(&c, PhaseState::A);
        assert_eq!(m.rows(), 2); // one node unknown + one branch
        assert_eq!(rhs.len(), 2);
        assert_eq!(rhs[1], 1.0);
    }

    #[test]
    fn transient_matrix_contains_cap_conductance() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.capacitor(a, GROUND, 1e-6);
        c.resistor(a, GROUND, 1.0);
        let m = assemble_transient_matrix(&c, PhaseState::A, 1e-6);
        // g_cap = C/dt = 1.0, plus resistor 1.0.
        assert!((m[(0, 0)] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn transient_rhs_uses_previous_cap_voltage() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.capacitor(a, GROUND, 2e-6);
        let rhs = assemble_transient_rhs(&c, 1e-6, &|_| 0.5);
        assert!((rhs[0] - 1.0).abs() < 1e-12); // g·v_prev = 2 · 0.5
    }
}
