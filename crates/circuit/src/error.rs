use std::error::Error;
use std::fmt;

use vstack_sparse::SolveError;

/// Error returned by circuit analyses.
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitError {
    /// The underlying linear solve failed — usually a floating node or a
    /// loop of ideal voltage sources making the MNA matrix singular.
    Solve(SolveError),
    /// An element was given a non-physical parameter (e.g. negative
    /// resistance or capacitance).
    InvalidParameter {
        /// Which element kind complained.
        element: &'static str,
        /// Human-readable description of the violation.
        message: String,
    },
    /// A transient analysis was configured with a non-positive step or span.
    InvalidTimeBase {
        /// Description of the bad configuration.
        message: String,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::Solve(e) => write!(f, "linear solve failed: {e}"),
            CircuitError::InvalidParameter { element, message } => {
                write!(f, "invalid {element} parameter: {message}")
            }
            CircuitError::InvalidTimeBase { message } => {
                write!(f, "invalid transient time base: {message}")
            }
        }
    }
}

impl Error for CircuitError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CircuitError::Solve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SolveError> for CircuitError {
    fn from(e: SolveError) -> Self {
        CircuitError::Solve(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_error_wraps_with_source() {
        let e = CircuitError::from(SolveError::SingularMatrix { pivot: 3 });
        assert!(e.to_string().contains("singular"));
        assert!(Error::source(&e).is_some());
    }
}
