//! A modified-nodal-analysis (MNA) circuit engine: the "Spectre substitute"
//! of the `vstack` toolkit.
//!
//! The DAC 2015 voltage-stacking paper validates its compact
//! switched-capacitor (SC) converter model against transistor-level Spectre
//! simulations (its Fig 3). We reproduce that validation loop with this
//! crate: a small, deterministic circuit simulator supporting
//!
//! * **Elements**: resistors, capacitors, independent current and voltage
//!   sources, voltage-controlled voltage sources (VCVS), and two-phase
//!   clocked switches (`R_on`/`R_off` model — the standard idealization of a
//!   CMOS power switch).
//! * **Analyses**: DC operating point ([`Circuit::dc_operating_point`]) and
//!   fixed-step backward-Euler transient ([`transient::Transient`]), with
//!   LU factors cached per switch phase so periodic steady-state runs are
//!   fast.
//!
//! Circuits here are *small* (tens of nodes — converter cells, compact test
//! benches); the full-chip PDN is assembled directly as a sparse SPD system
//! in `vstack-pdn`, not through this crate.
//!
//! # Example: resistor divider
//!
//! ```
//! use vstack_circuit::{Circuit, GROUND};
//!
//! # fn main() -> Result<(), vstack_circuit::CircuitError> {
//! let mut ckt = Circuit::new();
//! let vin = ckt.node("vin");
//! let mid = ckt.node("mid");
//! ckt.voltage_source(vin, GROUND, 2.0);
//! ckt.resistor(vin, mid, 1_000.0);
//! ckt.resistor(mid, GROUND, 1_000.0);
//! let op = ckt.dc_operating_point()?;
//! assert!((op.voltage(mid) - 1.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod element;
mod error;
mod mna;
mod netlist;

pub mod transient;
pub mod waveform;

pub use element::{ElementId, SwitchPhase};
pub use error::CircuitError;
pub use netlist::{Circuit, NodeId, OperatingPoint, GROUND};
