//! Time-series storage and measurement helpers for transient results.

/// Error returned by [`Waveform::try_push`] when a sample's time does not
/// strictly increase (or is not finite).
#[derive(Debug, Clone, PartialEq)]
pub struct NonIncreasingTime {
    /// The rejected sample time.
    pub t: f64,
    /// The previous (last accepted) sample time, if any.
    pub previous: Option<f64>,
}

impl std::fmt::Display for NonIncreasingTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.previous {
            Some(prev) => write!(
                f,
                "waveform sample time {} does not increase past {}",
                self.t, prev
            ),
            None => write!(f, "waveform sample time {} is not finite", self.t),
        }
    }
}

impl std::error::Error for NonIncreasingTime {}

/// A sampled waveform: strictly increasing times plus one value per sample.
///
/// Returned by [`crate::transient::TransientResult`] probes. The measurement
/// helpers ([`Waveform::average_between`], [`Waveform::min_between`], …)
/// implement the steady-state extraction used by the Fig 3 converter
/// validation: average output voltage and current over the last few
/// switching periods.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Waveform {
    times: Vec<f64>,
    values: Vec<f64>,
}

impl Waveform {
    /// Creates an empty waveform.
    pub fn new() -> Self {
        Waveform::default()
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not strictly greater than the previous sample time.
    /// Use [`Waveform::try_push`] where a malformed timestep should be an
    /// error instead.
    pub fn push(&mut self, t: f64, value: f64) {
        self.try_push(t, value)
            .expect("waveform samples must have increasing time");
    }

    /// Appends a sample, returning an error instead of panicking when `t`
    /// does not strictly increase (or is not finite).
    ///
    /// This is the entry point the transient engine uses: a backward-Euler
    /// run that produces a non-monotonic or non-finite timestamp is a
    /// time-base bug that should surface as a structured error, not tear
    /// down the process.
    ///
    /// # Errors
    ///
    /// Returns [`NonIncreasingTime`] carrying the offending and previous
    /// times; the waveform is left unchanged.
    pub fn try_push(&mut self, t: f64, value: f64) -> Result<(), NonIncreasingTime> {
        let last = self.times.last().copied();
        if !t.is_finite() || last.is_some_and(|l| t <= l) {
            return Err(NonIncreasingTime { t, previous: last });
        }
        self.times.push(t);
        self.values.push(value);
        Ok(())
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the waveform has no samples.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Sample times.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Sample values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The final sampled value, if any.
    pub fn last(&self) -> Option<f64> {
        self.values.last().copied()
    }

    fn window(&self, t0: f64, t1: f64) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.times
            .iter()
            .copied()
            .zip(self.values.iter().copied())
            .filter(move |&(t, _)| t >= t0 && t <= t1)
    }

    /// Time-weighted (trapezoidal) average of the samples in `[t0, t1]`.
    /// Returns `None` if fewer than two samples fall in the window.
    pub fn average_between(&self, t0: f64, t1: f64) -> Option<f64> {
        let pts: Vec<(f64, f64)> = self.window(t0, t1).collect();
        if pts.len() < 2 {
            return None;
        }
        let mut area = 0.0;
        for w in pts.windows(2) {
            let (ta, va) = w[0];
            let (tb, vb) = w[1];
            area += 0.5 * (va + vb) * (tb - ta);
        }
        let span = pts.last().unwrap().0 - pts[0].0;
        Some(area / span)
    }

    /// Minimum sample value in `[t0, t1]`, or `None` if the window is empty.
    pub fn min_between(&self, t0: f64, t1: f64) -> Option<f64> {
        self.window(t0, t1).map(|(_, v)| v).reduce(f64::min)
    }

    /// Maximum sample value in `[t0, t1]`, or `None` if the window is empty.
    pub fn max_between(&self, t0: f64, t1: f64) -> Option<f64> {
        self.window(t0, t1).map(|(_, v)| v).reduce(f64::max)
    }

    /// Peak-to-peak ripple in `[t0, t1]`, or `None` if the window is empty.
    pub fn ripple_between(&self, t0: f64, t1: f64) -> Option<f64> {
        Some(self.max_between(t0, t1)? - self.min_between(t0, t1)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> Waveform {
        let mut w = Waveform::new();
        for i in 0..=10 {
            w.push(i as f64, i as f64);
        }
        w
    }

    #[test]
    fn average_of_ramp_is_midpoint() {
        let w = ramp();
        assert!((w.average_between(0.0, 10.0).unwrap() - 5.0).abs() < 1e-12);
        assert!((w.average_between(4.0, 6.0).unwrap() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn min_max_ripple() {
        let w = ramp();
        assert_eq!(w.min_between(2.0, 7.0), Some(2.0));
        assert_eq!(w.max_between(2.0, 7.0), Some(7.0));
        assert_eq!(w.ripple_between(2.0, 7.0), Some(5.0));
    }

    #[test]
    fn empty_window_returns_none() {
        let w = ramp();
        assert_eq!(w.average_between(20.0, 30.0), None);
        assert_eq!(w.min_between(20.0, 30.0), None);
    }

    #[test]
    #[should_panic(expected = "increasing time")]
    fn non_monotonic_push_panics() {
        let mut w = Waveform::new();
        w.push(1.0, 0.0);
        w.push(1.0, 0.0);
    }

    #[test]
    fn last_value() {
        assert_eq!(ramp().last(), Some(10.0));
        assert_eq!(Waveform::new().last(), None);
    }

    #[test]
    fn try_push_rejects_without_mutating() {
        let mut w = Waveform::new();
        w.try_push(1.0, 5.0).expect("first sample");
        let err = w.try_push(1.0, 6.0).unwrap_err();
        assert_eq!(err.previous, Some(1.0));
        assert!(err.to_string().contains("does not increase"));
        assert_eq!(w.len(), 1);
        // Still usable afterwards with a valid time.
        w.try_push(2.0, 6.0).expect("valid sample");
        assert_eq!(w.last(), Some(6.0));
    }

    #[test]
    fn try_push_rejects_non_finite_time() {
        let mut w = Waveform::new();
        let err = w.try_push(f64::NAN, 0.0).unwrap_err();
        assert_eq!(err.previous, None);
        assert!(w.is_empty());
    }
}
