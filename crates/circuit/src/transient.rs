//! Fixed-step backward-Euler transient analysis with two-phase clocking.
//!
//! Backward Euler is unconditionally stable and adds numerical damping,
//! which is exactly what a switched-capacitor power converter simulation
//! wants: the waveforms of interest are cycle-averaged voltages and
//! currents, not edge rates. Choose `dt` ≈ 1/100 of the switching period
//! for ≲1% cycle-average error (the `vstack-sc` validation uses 1/200).
//!
//! The MNA matrix depends only on the active clock phase (switch states) and
//! `dt`, so the engine factorizes at most two LU decompositions per run and
//! reuses them across all timesteps.

use std::collections::HashMap;

use vstack_sparse::dense::LuFactors;

use crate::element::{Element, ElementId};
use crate::mna::{self, PhaseState};
use crate::netlist::{Circuit, NodeId};
use crate::waveform::Waveform;
use crate::CircuitError;

/// How the transient run obtains its `t = 0` state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InitialState {
    /// All node voltages start at 0 V; capacitors start at their declared
    /// initial condition.
    #[default]
    Zero,
    /// Run a phase-A DC operating point first and start from it (capacitors
    /// take their DC voltages). Reaches periodic steady state much faster
    /// for converter circuits.
    DcOperatingPoint,
}

/// Two-phase (50% duty) switching clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Clock {
    /// Switching frequency in hertz. Phase A occupies the first half of
    /// each period, phase B the second.
    pub frequency_hz: f64,
}

impl Clock {
    /// Which phase is active at time `t`.
    pub fn phase_at(&self, t: f64) -> crate::netlist::PhaseLabel {
        let frac = (t * self.frequency_hz).rem_euclid(1.0);
        if frac < 0.5 {
            crate::netlist::PhaseLabel::A
        } else {
            crate::netlist::PhaseLabel::B
        }
    }
}

/// Transient analysis configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Transient {
    /// Timestep in seconds.
    pub dt: f64,
    /// Total simulated span in seconds.
    pub duration: f64,
    /// Optional switching clock. Without one, every switch stays in its
    /// phase-A state for the whole run.
    pub clock: Option<Clock>,
    /// Initial-state policy.
    pub initial: InitialState,
}

impl Transient {
    /// Convenience constructor for an unclocked run.
    pub fn new(dt: f64, duration: f64) -> Self {
        Transient {
            dt,
            duration,
            clock: None,
            initial: InitialState::Zero,
        }
    }

    /// Runs the analysis, recording waveforms for `probes` and for every
    /// voltage-source/VCVS branch current.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::InvalidTimeBase`] if `dt` or `duration` is not
    ///   finite and positive, or `dt > duration`.
    /// * [`CircuitError::Solve`] if the MNA matrix is singular.
    pub fn run(
        &self,
        circuit: &Circuit,
        probes: &[NodeId],
    ) -> Result<TransientResult, CircuitError> {
        if !(self.dt.is_finite() && self.dt > 0.0) {
            return Err(CircuitError::InvalidTimeBase {
                message: format!("dt must be finite and positive, got {}", self.dt),
            });
        }
        if !(self.duration.is_finite() && self.duration >= self.dt) {
            return Err(CircuitError::InvalidTimeBase {
                message: format!(
                    "duration must be finite and at least dt, got {}",
                    self.duration
                ),
            });
        }

        let n_nodes = circuit.node_count();
        let n_unknowns = n_nodes - 1 + circuit.n_branches;

        // Initial node voltages.
        let mut v_nodes = vec![0.0; n_nodes];
        if self.initial == InitialState::DcOperatingPoint {
            let op = circuit.dc_operating_point()?;
            for (i, vn) in v_nodes.iter_mut().enumerate() {
                *vn = op.voltage(NodeId(i));
            }
        }

        // Previous capacitor voltages, keyed by element index.
        let mut cap_prev: HashMap<usize, f64> = HashMap::new();
        for (idx, e) in circuit.elements.iter().enumerate() {
            if let Element::Capacitor {
                a,
                b,
                initial_volts,
                ..
            } = e
            {
                let v = match self.initial {
                    InitialState::Zero => *initial_volts,
                    InitialState::DcOperatingPoint => v_nodes[a.0] - v_nodes[b.0],
                };
                cap_prev.insert(idx, v);
            }
        }

        // LU cache per phase.
        let mut lu_cache: HashMap<PhaseState, LuFactors> = HashMap::new();
        let mut factors = |phase: PhaseState| -> Result<LuFactors, CircuitError> {
            if let Some(f) = lu_cache.get(&phase) {
                return Ok(f.clone());
            }
            let m = mna::assemble_transient_matrix(circuit, phase, self.dt);
            let f = m.lu()?;
            lu_cache.insert(phase, f.clone());
            Ok(f)
        };

        let mut result = TransientResult::new(circuit, probes);
        let steps = (self.duration / self.dt).round() as usize;
        let mut t = 0.0;
        for _ in 0..steps {
            t += self.dt;
            let phase = match &self.clock {
                Some(clk) => match clk.phase_at(t) {
                    crate::netlist::PhaseLabel::A => PhaseState::A,
                    crate::netlist::PhaseLabel::B => PhaseState::B,
                },
                None => PhaseState::A,
            };
            let lu = factors(phase)?;
            let rhs = mna::assemble_transient_rhs(circuit, self.dt, &|idx| cap_prev[&idx]);
            debug_assert_eq!(rhs.len(), n_unknowns);
            let x = lu.solve(&rhs)?;

            v_nodes[1..n_nodes].copy_from_slice(&x[..n_nodes - 1]);
            for (idx, e) in circuit.elements.iter().enumerate() {
                if let Element::Capacitor { a, b, .. } = e {
                    cap_prev.insert(idx, v_nodes[a.0] - v_nodes[b.0]);
                }
            }
            result.record(circuit, t, &v_nodes, &x, n_nodes)?;
        }
        Ok(result)
    }
}

/// Waveforms produced by a [`Transient`] run.
#[derive(Debug, Clone)]
pub struct TransientResult {
    probe_waves: Vec<(NodeId, Waveform)>,
    branch_waves: Vec<(ElementId, Waveform)>,
}

impl TransientResult {
    fn new(circuit: &Circuit, probes: &[NodeId]) -> Self {
        let branch_waves = circuit
            .elements
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e, Element::VoltageSource { .. } | Element::Vcvs { .. }))
            .map(|(idx, _)| (ElementId(idx), Waveform::new()))
            .collect();
        TransientResult {
            probe_waves: probes.iter().map(|&n| (n, Waveform::new())).collect(),
            branch_waves,
        }
    }

    fn record(
        &mut self,
        circuit: &Circuit,
        t: f64,
        v_nodes: &[f64],
        x: &[f64],
        n_nodes: usize,
    ) -> Result<(), CircuitError> {
        let time_base = |e: crate::waveform::NonIncreasingTime| CircuitError::InvalidTimeBase {
            message: e.to_string(),
        };
        for (node, wave) in &mut self.probe_waves {
            wave.try_push(t, v_nodes[node.0]).map_err(time_base)?;
        }
        for (eid, wave) in &mut self.branch_waves {
            if let Element::VoltageSource { branch, .. } | Element::Vcvs { branch, .. } =
                &circuit.elements[eid.0]
            {
                wave.try_push(t, x[n_nodes - 1 + branch])
                    .map_err(time_base)?;
            }
        }
        Ok(())
    }

    /// Waveform of a probed node, if it was requested.
    pub fn voltage(&self, node: NodeId) -> Option<&Waveform> {
        self.probe_waves
            .iter()
            .find(|(n, _)| *n == node)
            .map(|(_, w)| w)
    }

    /// Branch-current waveform of a voltage source or VCVS.
    pub fn branch_current(&self, element: ElementId) -> Option<&Waveform> {
        self.branch_waves
            .iter()
            .find(|(e, _)| *e == element)
            .map(|(_, w)| w)
    }
}

/// Re-export used by [`Transient::run`] signature documentation.
pub use crate::netlist::PhaseLabel;

#[allow(unused_imports)]
use crate::netlist::GROUND; // referenced by doc links

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::SwitchPhase;
    use crate::netlist::GROUND;

    /// RC charging curve matches the analytic exponential.
    #[test]
    fn rc_charge_matches_analytic() {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let out = c.node("out");
        c.voltage_source(vin, GROUND, 1.0);
        c.resistor(vin, out, 1_000.0);
        c.capacitor(out, GROUND, 1e-6); // tau = 1 ms
        let tr = Transient::new(1e-6, 8e-3);
        let res = tr.run(&c, &[out]).unwrap();
        let w = res.voltage(out).unwrap();
        // At t = tau the voltage should be 1 − e⁻¹ ≈ 0.632, within BE error.
        let at_tau = w
            .times()
            .iter()
            .position(|&t| t >= 1e-3)
            .map(|i| w.values()[i])
            .unwrap();
        assert!((at_tau - 0.632).abs() < 0.01, "got {at_tau}");
        // Fully charged at the end.
        assert!((w.last().unwrap() - 1.0).abs() < 1e-3);
    }

    /// A capacitor with an initial condition discharges through a resistor.
    #[test]
    fn rc_discharge_from_initial_condition() {
        let mut c = Circuit::new();
        let out = c.node("out");
        c.capacitor_with_ic(out, GROUND, 1e-6, 2.0);
        c.resistor(out, GROUND, 1_000.0);
        let tr = Transient::new(1e-6, 3e-3);
        let res = tr.run(&c, &[out]).unwrap();
        let w = res.voltage(out).unwrap();
        // After 3 tau, v ≈ 2 e⁻³ ≈ 0.0996.
        assert!((w.last().unwrap() - 2.0 * (-3.0f64).exp()).abs() < 0.01);
    }

    /// DC initial state starts the run at the operating point.
    #[test]
    fn dc_initial_state_is_steady() {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let out = c.node("out");
        c.voltage_source(vin, GROUND, 1.0);
        c.resistor(vin, out, 100.0);
        c.resistor(out, GROUND, 100.0);
        c.capacitor(out, GROUND, 1e-6);
        let tr = Transient {
            dt: 1e-6,
            duration: 1e-4,
            clock: None,
            initial: InitialState::DcOperatingPoint,
        };
        let res = tr.run(&c, &[out]).unwrap();
        let w = res.voltage(out).unwrap();
        for &v in w.values() {
            assert!((v - 0.5).abs() < 1e-6, "steady state should not move");
        }
    }

    /// A clocked switch alternates conduction between the two phases.
    #[test]
    fn clocked_switch_toggles() {
        let mut c = Circuit::new();
        let n = c.node("n");
        c.current_source(GROUND, n, 1e-3);
        c.switch(n, GROUND, 1.0, 1e9, SwitchPhase::A);
        c.resistor(n, GROUND, 1e6); // keeps phase-B solvable
        let tr = Transient {
            dt: 1e-7,
            duration: 2e-5,
            clock: Some(Clock {
                frequency_hz: 100e3, // 10 µs period
            }),
            initial: InitialState::Zero,
        };
        let res = tr.run(&c, &[n]).unwrap();
        let w = res.voltage(n).unwrap();
        // Phase A (first 5 µs): switch on → ~1 mV. Phase B: off → ~1 kV.
        let on = w.average_between(1e-6, 4e-6).unwrap();
        let off = w.average_between(6e-6, 9e-6).unwrap();
        assert!(on < 0.01, "on-phase voltage {on}");
        assert!(off > 100.0, "off-phase voltage {off}");
    }

    /// Branch current of the source matches the load current.
    #[test]
    fn branch_current_recorded() {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let vs = c.voltage_source(vin, GROUND, 5.0);
        c.resistor(vin, GROUND, 50.0);
        let tr = Transient::new(1e-6, 1e-4);
        let res = tr.run(&c, &[]).unwrap();
        let i = res.branch_current(vs).unwrap().last().unwrap();
        assert!((i + 0.1).abs() < 1e-9, "expected −0.1 A, got {i}");
    }

    #[test]
    fn invalid_dt_rejected() {
        let c = Circuit::new();
        let tr = Transient::new(0.0, 1.0);
        assert!(matches!(
            tr.run(&c, &[]),
            Err(CircuitError::InvalidTimeBase { .. })
        ));
    }

    #[test]
    fn duration_shorter_than_dt_rejected() {
        let c = Circuit::new();
        let tr = Transient::new(1.0, 0.5);
        assert!(matches!(
            tr.run(&c, &[]),
            Err(CircuitError::InvalidTimeBase { .. })
        ));
    }

    #[test]
    fn clock_phase_at_boundaries() {
        let clk = Clock { frequency_hz: 1.0 };
        assert_eq!(clk.phase_at(0.0), PhaseLabel::A);
        assert_eq!(clk.phase_at(0.25), PhaseLabel::A);
        assert_eq!(clk.phase_at(0.5), PhaseLabel::B);
        assert_eq!(clk.phase_at(0.75), PhaseLabel::B);
        assert_eq!(clk.phase_at(1.0), PhaseLabel::A);
    }
}
