//! Property-based tests for the MNA engine: the linear-circuit theorems
//! (superposition, proportionality, passivity) must hold for arbitrary
//! generated networks.

use proptest::prelude::*;
use vstack_circuit::{Circuit, NodeId, GROUND};

/// A random linear resistive network: `n` nodes in a ring of resistors
/// (guaranteeing connectivity), plus random chords, one voltage source and
/// a set of current sources.
#[derive(Debug, Clone)]
struct NetSpec {
    ring_ohms: Vec<f64>,
    chords: Vec<(usize, usize, f64)>,
    source_volts: f64,
    injections: Vec<(usize, f64)>,
}

fn net_spec(n: usize) -> impl Strategy<Value = NetSpec> {
    (
        prop::collection::vec(1.0..100.0f64, n),
        prop::collection::vec((0..n, 0..n, 1.0..100.0f64), 0..n),
        -5.0..5.0f64,
        prop::collection::vec((0..n, -0.1..0.1f64), 1..n),
    )
        .prop_map(|(ring_ohms, chords, source_volts, injections)| NetSpec {
            ring_ohms,
            chords,
            source_volts,
            injections,
        })
}

/// Builds the circuit; `scale` multiplies every independent source.
fn build(
    spec: &NetSpec,
    scale: f64,
    with_injections: bool,
    with_vsrc: bool,
) -> (Circuit, Vec<NodeId>) {
    let n = spec.ring_ohms.len();
    let mut ckt = Circuit::new();
    let nodes: Vec<NodeId> = (0..n).map(|i| ckt.node(&format!("n{i}"))).collect();
    for i in 0..n {
        let j = (i + 1) % n;
        ckt.resistor(nodes[i], nodes[j], spec.ring_ohms[i]);
    }
    ckt.resistor(nodes[0], GROUND, 10.0);
    for &(a, b, ohms) in &spec.chords {
        if a != b {
            ckt.resistor(nodes[a], nodes[b], ohms);
        }
    }
    if with_vsrc {
        ckt.voltage_source(nodes[0], GROUND, spec.source_volts * scale);
    } else {
        // Keep the MNA structure identical by always having the branch.
        ckt.voltage_source(nodes[0], GROUND, 0.0);
    }
    if with_injections {
        for &(at, amps) in &spec.injections {
            ckt.current_source(GROUND, nodes[at], amps * scale);
        }
    }
    (ckt, nodes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Scaling every independent source by k scales every node voltage
    /// by k (proportionality of linear networks).
    #[test]
    fn proportionality(spec in net_spec(6), k in 0.1..5.0f64) {
        let (c1, n1) = build(&spec, 1.0, true, true);
        let (ck, nk) = build(&spec, k, true, true);
        let op1 = c1.dc_operating_point().expect("solvable");
        let opk = ck.dc_operating_point().expect("solvable");
        for (a, b) in n1.iter().zip(&nk) {
            prop_assert!((opk.voltage(*b) - k * op1.voltage(*a)).abs() < 1e-6);
        }
    }

    /// The response to all sources equals the sum of the responses to the
    /// voltage source alone and the current sources alone (superposition).
    #[test]
    fn superposition(spec in net_spec(6)) {
        let (call, nall) = build(&spec, 1.0, true, true);
        let (cv, nv) = build(&spec, 1.0, false, true);
        let (ci, ni) = build(&spec, 1.0, true, false);
        let op_all = call.dc_operating_point().expect("solvable");
        let op_v = cv.dc_operating_point().expect("solvable");
        let op_i = ci.dc_operating_point().expect("solvable");
        for ((a, b), c) in nall.iter().zip(&nv).zip(&ni) {
            let sum = op_v.voltage(*b) + op_i.voltage(*c);
            prop_assert!((op_all.voltage(*a) - sum).abs() < 1e-6);
        }
    }

    /// A purely resistive network with one positive source keeps every
    /// node voltage between the source rails (passivity / maximum
    /// principle).
    #[test]
    fn maximum_principle(spec in net_spec(6)) {
        let (ckt, nodes) = build(&spec, 1.0, false, true);
        let op = ckt.dc_operating_point().expect("solvable");
        let v_src = spec.source_volts;
        let (lo, hi) = if v_src >= 0.0 { (0.0, v_src) } else { (v_src, 0.0) };
        for n in &nodes {
            let v = op.voltage(*n);
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "node at {v}, rails [{lo}, {hi}]");
        }
    }
}
