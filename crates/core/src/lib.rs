//! `vstack` — a cross-layer design-exploration toolkit for charge-recycled
//! (voltage-stacked) power delivery in many-layer 3D-ICs.
//!
//! This crate is a from-scratch reproduction of
//! *Zhang et al., "A Cross-Layer Design Exploration of Charge-Recycled
//! Power-Delivery in Many-Layer 3D-IC", DAC 2015*: a system-level PDN model
//! for 3D-ICs that evaluates EM-induced reliability and supply-voltage
//! noise for both **regular** and **voltage-stacked** power delivery, on
//! top of re-implemented substrates for every tool the paper used
//! (VoltSpot, Spectre, McPAT, ArchFP, Gem5+Parsec, HotSpot).
//!
//! * [`scenario`] — the [`scenario::DesignScenario`] builder: pick layer
//!   count, TSV topology, C4 allocation and converter configuration, then
//!   solve operating points.
//! * [`em_study`] — EM-lifetime evaluation of a solved PDN's C4 and TSV
//!   arrays (paper §3.3 / §5.1).
//! * [`experiments`] — one driver per table/figure of the paper's
//!   evaluation, each returning plain data that the benchmark binaries
//!   print and the integration tests assert against.
//!
//! The substrate crates are re-exported (`vstack::pdn`, `vstack::sc`, …)
//! so downstream users need a single dependency.
//!
//! # Quickstart
//!
//! ```
//! use vstack::scenario::DesignScenario;
//! use vstack::pdn::TsvTopology;
//!
//! # fn main() -> Result<(), vstack_sparse::SolveError> {
//! // An 8-layer voltage-stacked processor with 4 converters per core.
//! let scenario = DesignScenario::paper_baseline()
//!     .layers(8)
//!     .tsv_topology(TsvTopology::Few)
//!     .converters_per_core(4)
//!     .coarse_grid(); // fast grid for doc tests
//! let op = scenario.solve_voltage_stacked(0.65)?;
//! assert!(op.max_ir_drop_frac > 0.0 && op.max_ir_drop_frac < 0.10);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coupled;
pub mod em_study;
pub mod experiments;
pub mod scenario;

pub use vstack_circuit as circuit;
pub use vstack_em as em;
pub use vstack_pdn as pdn;
pub use vstack_power as power;
pub use vstack_sc as sc;
pub use vstack_sparse as sparse;
pub use vstack_thermal as thermal;
