//! Thermal–EM–IR fixed-point co-simulation.
//!
//! Closes the loop the uncoupled studies leave open: the IR solve gives a
//! power map, [`StackThermalModel`] turns it into per-layer temperatures,
//! temperature raises the copper resistivity of each layer's on-chip grid
//! ([`vstack_pdn::PdnParams::layer_r_scale`]) and rescales Black's
//! equation through [`BlackModel::at_temperature`], and the PDN is
//! re-solved under the drifted resistances. The loop is iterated to a
//! **damped fixed point**: after each thermal solve the per-layer
//! temperature estimate moves a fraction [`CoupledConfig::damping`] of
//! the way toward the fresh solution, and the loop stops when the raw
//! update falls below [`CoupledConfig::tolerance_c`].
//!
//! Load cores are ideal current sources (paper §3.2), so the dominant
//! heat term is constant and the feedback runs through the resistive
//! wire losses — physically a contraction, which is why a modest damping
//! factor converges in a handful of iterations on paper-scale grids.
//! If the iteration cap is hit anyway, the driver degrades gracefully:
//! it warns once, counts the event in `coupling_nonconverged`, and
//! returns the uncoupled solution with the convergence report attached.
//!
//! Every re-solve goes through one shared [`SolveScratch`], so after the
//! first (pattern-building) solve each iteration only re-stamps values
//! into the cached CSR pattern — zero symbolic refactorizations, which
//! the integration tests assert via the `pdn_pattern_builds` counter.

use crate::em_study::{c4_array_lifetime, paper_em_lifetimes, tsv_array_lifetime, EmLifetimes};
use crate::scenario::DesignScenario;
use vstack_em::black::{BlackModel, DEFAULT_JUNCTION_K};
use vstack_pdn::{FaultedSolution, PdnError, SolveScratch, StackLoads};
use vstack_thermal::{StackThermalModel, ThermalParams};

/// Temperature coefficient of copper resistivity, 1/K.
pub const COPPER_ALPHA_PER_K: f64 = 0.00393;

/// Which electrical scenario the coupled loop drives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CoupledLoad {
    /// Regular PDN at full activity (its worst case).
    RegularPeak,
    /// Voltage-stacked PDN under the interleaved pattern at this
    /// imbalance.
    VoltageStacked(f64),
}

/// Knobs of the coupled fixed-point driver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoupledConfig {
    /// Thermal stack parameters (ambient, heatsink, materials).
    pub thermal: ThermalParams,
    /// Optional hotspot injection: extra watts spread uniformly over the
    /// cells of one layer (ambient/heat-sink sweeps use the thermal
    /// params instead).
    pub hotspot_layer: Option<usize>,
    /// Extra hotspot power in watts (total for the layer).
    pub hotspot_w: f64,
    /// Fraction of each raw temperature update applied per iteration
    /// (`T ← T + damping · (T_new − T)`). 1.0 is undamped Picard.
    pub damping: f64,
    /// Iteration cap before the driver gives up and falls back to the
    /// uncoupled result.
    pub max_iterations: usize,
    /// Convergence threshold on the raw per-iteration max layer-mean
    /// temperature change, °C.
    pub tolerance_c: f64,
    /// Temperature coefficient applied to the on-chip grid resistance,
    /// 1/K.
    pub alpha_per_k: f64,
    /// Reference temperature of the nominal (Table 1) resistances, °C.
    /// At this temperature the resistance scale is exactly 1.0, so the
    /// uncoupled baseline is recovered.
    pub reference_c: f64,
}

impl CoupledConfig {
    /// Paper platform defaults: air-cooled stack, half-step damping,
    /// 25-iteration cap, 0.05 °C tolerance, copper resistivity slope,
    /// 80 °C reference (the uncoupled EM junction temperature).
    pub fn paper_air_cooled() -> Self {
        CoupledConfig {
            thermal: ThermalParams::paper_air_cooled(),
            hotspot_layer: None,
            hotspot_w: 0.0,
            damping: 0.5,
            max_iterations: 25,
            tolerance_c: 0.05,
            alpha_per_k: COPPER_ALPHA_PER_K,
            reference_c: DEFAULT_JUNCTION_K - 273.15,
        }
    }

    /// Sets the ambient temperature, °C.
    pub fn ambient_c(mut self, t: f64) -> Self {
        self.thermal.ambient_c = t;
        self
    }

    /// Sets the heatsink resistance, K/W.
    pub fn sink_resistance(mut self, k_per_w: f64) -> Self {
        self.thermal.sink_resistance_k_per_w = k_per_w;
        self
    }

    /// Injects `watts` of extra power uniformly over `layer`'s cells.
    pub fn hotspot(mut self, layer: usize, watts: f64) -> Self {
        self.hotspot_layer = Some(layer);
        self.hotspot_w = watts;
        self
    }

    fn validate(&self) {
        assert!(
            self.damping > 0.0 && self.damping <= 1.0,
            "damping must be in (0, 1], got {}",
            self.damping
        );
        assert!(self.max_iterations > 0, "need at least one iteration");
        assert!(
            self.tolerance_c.is_finite() && self.tolerance_c > 0.0,
            "tolerance must be positive"
        );
        assert!(
            self.alpha_per_k.is_finite() && self.alpha_per_k >= 0.0,
            "alpha must be non-negative"
        );
    }
}

/// Convergence diagnostics and temperature-aware EM results of one
/// coupled run.
#[derive(Debug, Clone, PartialEq)]
pub struct CoupledReport {
    /// Fixed-point iterations performed (thermal solve + IR re-solve
    /// pairs).
    pub iterations: usize,
    /// Whether the raw temperature update fell below the tolerance
    /// within the iteration cap.
    pub converged: bool,
    /// Raw max layer-mean temperature change of the last iteration, °C —
    /// the residual the convergence criterion judges.
    pub residual_c: f64,
    /// Converged (damped) mean temperature of each layer, °C (index 0 =
    /// bottom).
    pub layer_temps_c: Vec<f64>,
    /// Hotspot cell temperature of the final thermal solve, °C.
    pub peak_temperature_c: f64,
    /// EM lifetimes at the coupled per-layer temperatures.
    pub em: EmLifetimes,
    /// EM lifetimes of the uncoupled baseline (fixed 80 °C junction).
    pub em_uncoupled: EmLifetimes,
}

/// Electrical solution plus coupling diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct CoupledSolution {
    /// The final IR solve — at the drifted resistances when the loop
    /// converged, the uncoupled baseline when it did not.
    pub solved: FaultedSolution,
    /// Convergence report and temperature-scaled EM lifetimes.
    pub report: CoupledReport,
}

fn solve_once(
    scenario: &DesignScenario,
    load: CoupledLoad,
    guess: Option<&[f64]>,
    scratch: &mut SolveScratch,
) -> Result<FaultedSolution, PdnError> {
    match load {
        CoupledLoad::RegularPeak => scenario.solve_regular_peak_warm(guess, scratch),
        CoupledLoad::VoltageStacked(imbalance) => {
            scenario.solve_voltage_stacked_warm(imbalance, guess, scratch)
        }
    }
}

/// Per-layer, per-cell heat map in watts: constant core power (ideal
/// current sources at nominal Vdd) plus the solution's resistive and
/// converter losses spread proportionally to layer current, plus any
/// hotspot injection.
fn power_map(
    scenario: &DesignScenario,
    loads: &StackLoads,
    solved: &FaultedSolution,
    config: &CoupledConfig,
) -> Vec<Vec<f64>> {
    let vdd = scenario.pdn_params().vdd;
    let n_layers = loads.n_layers();
    let cells = loads.cores_per_layer();
    let loss_w = (solved.solution.p_input_w + solved.solution.p_parasitic_w
        - solved.solution.p_loads_w)
        .max(0.0);
    let total_i = loads.total_current().max(f64::MIN_POSITIVE);
    let mut power: Vec<Vec<f64>> = (0..n_layers)
        .map(|layer| {
            let layer_loss_cell = loss_w * loads.layer_current(layer) / total_i / cells as f64;
            (0..cells)
                .map(|core| loads.core_current(layer, core) * vdd + layer_loss_cell)
                .collect()
        })
        .collect();
    if let Some(layer) = config.hotspot_layer {
        if layer < n_layers && config.hotspot_w > 0.0 {
            let extra = config.hotspot_w / cells as f64;
            for cell in &mut power[layer] {
                *cell += extra;
            }
        }
    }
    power
}

/// Runs the damped thermal–EM–IR fixed point for one scenario.
///
/// `guess` seeds the first (uncoupled) IR solve — the engine passes its
/// nearest cached neighbour; each subsequent iteration warm-starts from
/// the previous iteration's voltages through the same `scratch`, so only
/// the first solve builds the CSR pattern.
///
/// # Errors
///
/// Propagates [`PdnError`] from the electrical solves and wraps thermal
/// CG failures as [`PdnError::Solve`]. Non-convergence of the *coupling
/// loop* is not an error: the driver falls back to the uncoupled result
/// (`report.converged == false`).
///
/// # Panics
///
/// Panics if `config` is out of range (see [`CoupledConfig`] field docs)
/// or a drifted resistance scale becomes non-positive.
pub fn solve_coupled(
    scenario: &DesignScenario,
    load: CoupledLoad,
    config: &CoupledConfig,
    guess: Option<&[f64]>,
    scratch: &mut SolveScratch,
) -> Result<CoupledSolution, PdnError> {
    config.validate();
    let metrics = vstack_obs::metrics::global();
    metrics.coupling_runs.inc();
    let _span = vstack_obs::span!("coupled_solve");

    let loads = match load {
        CoupledLoad::RegularPeak => scenario.peak_loads(),
        CoupledLoad::VoltageStacked(imbalance) => scenario.interleaved_loads(imbalance),
    };
    let n_layers = scenario.n_layers();
    let thermal = StackThermalModel::new(
        config.thermal,
        n_layers,
        scenario.pdn_params().core_cols,
        scenario.pdn_params().core_rows,
    );

    // Uncoupled baseline: nominal resistances, fixed-junction EM. Kept as
    // the graceful-degradation fallback.
    let base = solve_once(scenario, load, guess, scratch)?;
    let em_uncoupled = paper_em_lifetimes(&base.solution);

    let mut temps = vec![config.thermal.ambient_c; n_layers];
    let mut last = base.clone();
    let mut peak_c = config.thermal.ambient_c;
    let mut residual_c = f64::INFINITY;
    let mut iterations = 0;
    let mut converged = false;
    while iterations < config.max_iterations {
        let _iter_span = vstack_obs::span!("coupling_iteration");
        iterations += 1;
        metrics.coupling_iterations.inc();

        let power = power_map(scenario, &loads, &last, config);
        let tsol = thermal.solve(&power).map_err(PdnError::Solve)?;
        peak_c = tsol.max_temperature_c();
        residual_c = (0..n_layers)
            .map(|l| (tsol.layer_mean_c(l) - temps[l]).abs())
            .fold(0.0, f64::max);
        metrics
            .coupling_delta_t_mk
            .observe((residual_c * 1000.0).round() as u64);
        for (l, t) in temps.iter_mut().enumerate() {
            *t += config.damping * (tsol.layer_mean_c(l) - *t);
        }

        if residual_c < config.tolerance_c {
            converged = true;
            break;
        }

        // Drift the per-layer grid resistances and re-solve warm; the
        // sparsity pattern is unchanged, so this is a values-only
        // re-stamp through the shared scratch.
        let mut params = scenario.pdn_params().clone();
        params.layer_r_scale = temps
            .iter()
            .map(|t| 1.0 + config.alpha_per_k * (t - config.reference_c))
            .collect();
        let drifted = scenario.clone().params(params);
        last = solve_once(&drifted, load, Some(&last.voltages), scratch)?;
    }

    if !converged {
        metrics.coupling_nonconverged.inc();
        vstack_obs::warn_once!(
            "coupled",
            "thermal-IR fixed point did not converge in {} iterations \
             (residual {residual_c:.3} °C > {} °C); falling back to the \
             uncoupled solution",
            config.max_iterations,
            config.tolerance_c
        );
        last = base;
    }

    // Temperature-scaled EM: C4 bumps sit under the bottom die; the TSV
    // array is stressed worst at the hottest layer it crosses.
    let c4_k = temps[0] + 273.15;
    let tsv_k = temps.iter().copied().fold(f64::MIN, f64::max) + 273.15;
    let em = EmLifetimes {
        c4_hours: c4_array_lifetime(&last.solution, &BlackModel::paper_c4().at_temperature(c4_k)),
        tsv_hours: tsv_array_lifetime(
            &last.solution,
            &BlackModel::paper_tsv().at_temperature(tsv_k),
        ),
    };
    Ok(CoupledSolution {
        solved: last,
        report: CoupledReport {
            iterations,
            converged,
            residual_c,
            layer_temps_c: temps,
            peak_temperature_c: peak_c,
            em,
            em_uncoupled,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_scenario(layers: usize) -> DesignScenario {
        DesignScenario::paper_baseline()
            .layers(layers)
            .coarse_grid()
    }

    #[test]
    fn converges_on_quick_grid_and_reports_temps() {
        let mut scratch = SolveScratch::new();
        let s = quick_scenario(4);
        let out = solve_coupled(
            &s,
            CoupledLoad::RegularPeak,
            &CoupledConfig::paper_air_cooled(),
            None,
            &mut scratch,
        )
        .unwrap();
        assert!(out.report.converged, "residual {}", out.report.residual_c);
        assert!(out.report.iterations >= 2);
        assert_eq!(out.report.layer_temps_c.len(), 4);
        // Heatsink on top: bottom layer runs hottest.
        assert!(out.report.layer_temps_c[0] > out.report.layer_temps_c[3]);
        assert!(out.report.peak_temperature_c > out.report.layer_temps_c[0]);
    }

    #[test]
    fn coupled_em_differs_from_uncoupled() {
        let mut scratch = SolveScratch::new();
        let out = solve_coupled(
            &quick_scenario(8),
            CoupledLoad::RegularPeak,
            &CoupledConfig::paper_air_cooled(),
            None,
            &mut scratch,
        )
        .unwrap();
        let delta = (out.report.em.c4_hours - out.report.em_uncoupled.c4_hours).abs()
            / out.report.em_uncoupled.c4_hours;
        assert!(delta > 1e-3, "coupling changed C4 lifetime by {delta:.2e}");
    }

    #[test]
    fn cooler_stack_outlives_hotter_stack() {
        let mut scratch = SolveScratch::new();
        let s = quick_scenario(4);
        let cold = solve_coupled(
            &s,
            CoupledLoad::RegularPeak,
            &CoupledConfig::paper_air_cooled().ambient_c(25.0),
            None,
            &mut scratch,
        )
        .unwrap();
        let hot = solve_coupled(
            &s,
            CoupledLoad::RegularPeak,
            &CoupledConfig::paper_air_cooled().ambient_c(65.0),
            None,
            &mut scratch,
        )
        .unwrap();
        assert!(cold.report.em.c4_hours > hot.report.em.c4_hours);
        assert!(cold.report.em.tsv_hours > hot.report.em.tsv_hours);
    }

    #[test]
    fn hotspot_injection_heats_its_layer() {
        let mut scratch = SolveScratch::new();
        let s = quick_scenario(4);
        let base = solve_coupled(
            &s,
            CoupledLoad::RegularPeak,
            &CoupledConfig::paper_air_cooled(),
            None,
            &mut scratch,
        )
        .unwrap();
        let spiked = solve_coupled(
            &s,
            CoupledLoad::RegularPeak,
            &CoupledConfig::paper_air_cooled().hotspot(2, 10.0),
            None,
            &mut scratch,
        )
        .unwrap();
        assert!(spiked.report.layer_temps_c[2] > base.report.layer_temps_c[2] + 0.5);
    }

    #[test]
    fn nonconvergence_falls_back_to_uncoupled() {
        let mut scratch = SolveScratch::new();
        let s = quick_scenario(2);
        let strict = CoupledConfig {
            tolerance_c: 1e-12,
            max_iterations: 2,
            ..CoupledConfig::paper_air_cooled()
        };
        let out = solve_coupled(&s, CoupledLoad::RegularPeak, &strict, None, &mut scratch).unwrap();
        assert!(!out.report.converged);
        // Fallback result is the uncoupled solve, bit-identical.
        let mut scratch2 = SolveScratch::new();
        let base = s.solve_regular_peak_warm(None, &mut scratch2).unwrap();
        assert_eq!(out.solved.solution, base.solution);
    }

    #[test]
    fn voltage_stacked_load_runs_too() {
        let mut scratch = SolveScratch::new();
        let out = solve_coupled(
            &quick_scenario(2),
            CoupledLoad::VoltageStacked(0.3),
            &CoupledConfig::paper_air_cooled(),
            None,
            &mut scratch,
        )
        .unwrap();
        assert!(out.report.converged);
        assert!(out.report.em.c4_hours.is_finite());
    }
}
