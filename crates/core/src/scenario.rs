//! Design-scenario builder: the single entry point tying the platform
//! parameters, PDN topology, regulator configuration and workload pattern
//! together.

use vstack_pdn::solution::PdnSolution;
use vstack_pdn::{
    FaultSet, FaultedSolution, PdnError, PdnParams, RegularPdn, StackLoads, TsvTopology, VstackPdn,
};
use vstack_power::workload::ImbalancePattern;
use vstack_sc::compact::ScConverter;
use vstack_sparse::SolveError;

/// A complete 3D-IC power-delivery design point.
///
/// Built with chained setters from [`DesignScenario::paper_baseline`];
/// terminal methods construct and solve either PDN topology.
#[derive(Debug, Clone)]
pub struct DesignScenario {
    params: PdnParams,
    n_layers: usize,
    topology: TsvTopology,
    power_c4_fraction: f64,
    converter: ScConverter,
    converters_per_core: usize,
}

impl DesignScenario {
    /// The paper's evaluation platform: Table 1 parameters, 16-core layers,
    /// "Few TSV" topology, 25% power C4, the 28 nm open-loop converter,
    /// 4 converters per core, 8 layers.
    pub fn paper_baseline() -> Self {
        DesignScenario {
            params: PdnParams::paper_defaults(),
            n_layers: 8,
            topology: TsvTopology::Few,
            power_c4_fraction: 0.25,
            converter: ScConverter::paper_28nm(),
            converters_per_core: 4,
        }
    }

    /// Sets the number of stacked layers.
    pub fn layers(mut self, n: usize) -> Self {
        self.n_layers = n;
        self
    }

    /// Sets the TSV topology.
    pub fn tsv_topology(mut self, t: TsvTopology) -> Self {
        self.topology = t;
        self
    }

    /// Sets the fraction of C4 pads allocated to power delivery.
    pub fn power_c4_fraction(mut self, f: f64) -> Self {
        self.power_c4_fraction = f;
        self
    }

    /// Sets the number of SC converters per core (per intermediate rail).
    pub fn converters_per_core(mut self, k: usize) -> Self {
        self.converters_per_core = k;
        self
    }

    /// Replaces the converter design.
    pub fn converter(mut self, c: ScConverter) -> Self {
        self.converter = c;
        self
    }

    /// Replaces the full parameter set.
    pub fn params(mut self, p: PdnParams) -> Self {
        self.params = p;
        self
    }

    /// Switches to the coarsest electrical grid (refinement 1). Roughly
    /// 10× faster solves at ≈10% IR-drop accuracy — intended for tests and
    /// doc examples, not for reported results.
    pub fn coarse_grid(mut self) -> Self {
        self.params.grid_refinement = 1;
        self
    }

    /// The parameter set in use.
    pub fn pdn_params(&self) -> &PdnParams {
        &self.params
    }

    /// Number of layers in this scenario.
    pub fn n_layers(&self) -> usize {
        self.n_layers
    }

    /// The TSV topology in use.
    ///
    /// Canonicalization hook: serving layers (e.g. `vstack-engine`)
    /// fingerprint scenarios from these accessors, so every knob a setter
    /// can change must be readable back.
    pub fn tsv_topology_used(&self) -> TsvTopology {
        self.topology
    }

    /// The fraction of C4 pads allocated to power delivery.
    pub fn power_c4_fraction_used(&self) -> f64 {
        self.power_c4_fraction
    }

    /// The number of SC converters per core (per intermediate rail).
    pub fn converters_per_core_used(&self) -> usize {
        self.converters_per_core
    }

    /// The modeling-grid refinement in use (1 = coarse/quick, 3 = paper).
    pub fn grid_refinement_used(&self) -> usize {
        self.params.grid_refinement
    }

    /// The converter design in use.
    pub fn converter_design(&self) -> &ScConverter {
        &self.converter
    }

    /// Builds the regular-topology PDN.
    pub fn regular_pdn(&self) -> RegularPdn {
        RegularPdn::new(
            &self.params,
            self.n_layers,
            self.topology,
            self.power_c4_fraction,
        )
    }

    /// Builds the voltage-stacked PDN.
    pub fn voltage_stacked_pdn(&self) -> VstackPdn {
        VstackPdn::new(
            &self.params,
            self.n_layers,
            self.topology,
            self.power_c4_fraction,
            self.converter,
            self.converters_per_core,
        )
    }

    /// Loads for the interleaved high/low pattern at the given imbalance.
    pub fn interleaved_loads(&self, imbalance: f64) -> StackLoads {
        StackLoads::interleaved(
            &self.params,
            self.n_layers,
            &ImbalancePattern::new(imbalance),
        )
    }

    /// Fully-active loads (the regular PDN's worst case).
    pub fn peak_loads(&self) -> StackLoads {
        StackLoads::uniform_peak(&self.params, self.n_layers)
    }

    /// Convenience: solve the regular PDN at full activity.
    ///
    /// # Errors
    ///
    /// Propagates the solver error.
    pub fn solve_regular_peak(&self) -> Result<PdnSolution, SolveError> {
        self.regular_pdn().solve(&self.peak_loads())
    }

    /// Convenience: solve the V-S PDN under the interleaved pattern.
    ///
    /// # Errors
    ///
    /// Propagates the solver error.
    pub fn solve_voltage_stacked(&self, imbalance: f64) -> Result<PdnSolution, SolveError> {
        self.voltage_stacked_pdn()
            .solve(&self.interleaved_loads(imbalance))
    }

    /// Like [`DesignScenario::solve_regular_peak`], but through the
    /// fault-aware resilient path: returns the full [`FaultedSolution`],
    /// whose [`vstack_sparse::SolveReport`] records any escalation-ladder
    /// fallback the solve needed, and optionally open-circuits `faults`.
    ///
    /// # Errors
    ///
    /// [`PdnError::Disconnected`] if `faults` isolate part of the grid;
    /// [`PdnError::Solve`] if the escalation ladder is exhausted.
    pub fn solve_regular_peak_reported(
        &self,
        faults: &FaultSet,
    ) -> Result<FaultedSolution, PdnError> {
        self.regular_pdn()
            .solve_faulted(&self.peak_loads(), faults, None)
    }

    /// Like [`DesignScenario::solve_voltage_stacked`], but through the
    /// fault-aware resilient path (see
    /// [`DesignScenario::solve_regular_peak_reported`]).
    ///
    /// # Errors
    ///
    /// As for [`DesignScenario::solve_regular_peak_reported`].
    pub fn solve_voltage_stacked_reported(
        &self,
        imbalance: f64,
        faults: &FaultSet,
    ) -> Result<FaultedSolution, PdnError> {
        self.voltage_stacked_pdn()
            .solve_faulted(&self.interleaved_loads(imbalance), faults, None)
    }

    /// Warm-started, scratch-reusing variant of
    /// [`DesignScenario::solve_regular_peak_reported`] without fault
    /// injection — the solve entry point the `vstack-engine` batch
    /// scheduler drives. A converged `guess` is returned unchanged
    /// (bit-identical voltages, zero iterations); `scratch` recycles the
    /// CSR pattern and Krylov vectors across repeated solves.
    ///
    /// # Errors
    ///
    /// As for [`DesignScenario::solve_regular_peak_reported`].
    pub fn solve_regular_peak_warm(
        &self,
        guess: Option<&[f64]>,
        scratch: &mut vstack_pdn::SolveScratch,
    ) -> Result<FaultedSolution, PdnError> {
        let _span = vstack_obs::span!("scenario_solve");
        self.regular_pdn()
            .solve_warm(&self.peak_loads(), guess, scratch)
    }

    /// Warm-started, scratch-reusing variant of
    /// [`DesignScenario::solve_voltage_stacked_reported`] without fault
    /// injection (see [`DesignScenario::solve_regular_peak_warm`]).
    ///
    /// # Errors
    ///
    /// As for [`DesignScenario::solve_voltage_stacked_reported`].
    pub fn solve_voltage_stacked_warm(
        &self,
        imbalance: f64,
        guess: Option<&[f64]>,
        scratch: &mut vstack_pdn::SolveScratch,
    ) -> Result<FaultedSolution, PdnError> {
        let _span = vstack_obs::span!("scenario_solve");
        self.voltage_stacked_pdn()
            .solve_warm(&self.interleaved_loads(imbalance), guess, scratch)
    }

    /// Sketched fault-query variant of
    /// [`DesignScenario::solve_regular_peak_reported`]: answers through
    /// the rank-k Sherman–Morrison–Woodbury fault sketch cached in
    /// `scratch`, so a warm sweep costs microseconds per fault set instead
    /// of a full ladder solve. The first call (or any query the sketch
    /// refuses — structural disconnection, over-budget rank) transparently
    /// runs the exact path. Fault-map studies and the engine's fault axis
    /// drive this entry point.
    ///
    /// # Errors
    ///
    /// As for [`DesignScenario::solve_regular_peak_reported`].
    pub fn solve_regular_peak_sketched(
        &self,
        faults: &FaultSet,
        scratch: &mut vstack_pdn::SolveScratch,
    ) -> Result<FaultedSolution, PdnError> {
        let _span = vstack_obs::span!("scenario_solve");
        self.regular_pdn()
            .solve_faulted_sketched(&self.peak_loads(), faults, scratch)
    }

    /// Sketched fault-query variant of
    /// [`DesignScenario::solve_voltage_stacked_reported`] (see
    /// [`DesignScenario::solve_regular_peak_sketched`]). Closed-loop
    /// converter scenarios always take the exact Picard path — the
    /// regulation loop re-stamps the matrix, which a value-bound sketch
    /// cannot follow.
    ///
    /// # Errors
    ///
    /// As for [`DesignScenario::solve_voltage_stacked_reported`].
    pub fn solve_voltage_stacked_sketched(
        &self,
        imbalance: f64,
        faults: &FaultSet,
        scratch: &mut vstack_pdn::SolveScratch,
    ) -> Result<FaultedSolution, PdnError> {
        let _span = vstack_obs::span!("scenario_solve");
        self.voltage_stacked_pdn().solve_faulted_sketched(
            &self.interleaved_loads(imbalance),
            faults,
            scratch,
        )
    }

    /// Total silicon-area overhead fraction of this scenario's V-S PDN on
    /// one core: TSV keep-out zones plus converter area (with high-density
    /// capacitors). The paper's equal-area argument: V-S with Few TSVs and
    /// 8 converters/core ≈ a regular PDN with Dense TSVs.
    pub fn vs_area_overhead_per_core(&self) -> f64 {
        let conv = vstack_sc::area::area_overhead_per_core(
            vstack_sc::CapacitorTech::Ferroelectric,
            self.params.core.area_mm2(),
        );
        self.topology.area_overhead(&self.params) + conv * self.converters_per_core as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let s = DesignScenario::paper_baseline()
            .layers(4)
            .tsv_topology(TsvTopology::Dense)
            .converters_per_core(8);
        assert_eq!(s.n_layers(), 4);
        assert_eq!(s.voltage_stacked_pdn().converters_per_core(), 8);
        assert_eq!(s.regular_pdn().topology(), TsvTopology::Dense);
    }

    #[test]
    fn equal_area_argument_holds() {
        // Few TSV + 8 converters/core ≈ Dense TSV (paper §5.2).
        let vs = DesignScenario::paper_baseline()
            .tsv_topology(TsvTopology::Few)
            .converters_per_core(8)
            .vs_area_overhead_per_core();
        let dense = TsvTopology::Dense.area_overhead(&PdnParams::paper_defaults());
        assert!(
            (vs - dense).abs() / dense < 0.35,
            "V-S(Few, 8/core) {vs:.3} vs Dense {dense:.3}"
        );
    }

    #[test]
    fn reported_solve_matches_plain_solve_and_is_unrescued() {
        let s = DesignScenario::paper_baseline().layers(2).coarse_grid();
        let plain = s.solve_voltage_stacked(0.4).unwrap();
        let reported = s
            .solve_voltage_stacked_reported(0.4, &FaultSet::new())
            .unwrap();
        assert!((plain.max_ir_drop_frac - reported.solution.max_ir_drop_frac).abs() < 1e-12);
        assert!(
            !reported.report.was_rescued(),
            "{}",
            reported.report.trail()
        );
    }

    #[test]
    fn coarse_and_fine_grids_agree_roughly() {
        let fine = DesignScenario::paper_baseline().layers(2);
        let coarse = fine.clone().coarse_grid();
        let a = fine.solve_voltage_stacked(0.5).unwrap().max_ir_drop_frac;
        let b = coarse.solve_voltage_stacked(0.5).unwrap().max_ir_drop_frac;
        assert!(
            (a - b).abs() / a < 0.4,
            "grid refinement should not change the answer wholesale: {a} vs {b}"
        );
    }
}
