//! EM-lifetime evaluation of solved PDNs (paper §3.3 applied in §5.1).
//!
//! Converts the per-conductor current profiles a
//! [`vstack_pdn::PdnSolution`] reports into the paper's robustness metric:
//! the *expected EM-damage-free lifetime* of the C4 pad array and of the
//! power-TSV array.

use vstack_em::array::expected_em_free_lifetime;
use vstack_em::black::BlackModel;
use vstack_pdn::solution::{ConductorCurrents, PdnSolution};

/// Converts a conductor-current profile into the `(current, count)` pairs
/// the EM array model consumes.
fn groups_of(c: &ConductorCurrents) -> Vec<(f64, f64)> {
    c.groups().iter().map(|g| (g.current_a, g.count)).collect()
}

/// Expected EM-damage-free lifetime (hours) of the full C4 pad array
/// (supply and return pads together).
pub fn c4_array_lifetime(solution: &PdnSolution, model: &BlackModel) -> f64 {
    let mut groups = groups_of(&solution.vdd_c4);
    groups.extend(groups_of(&solution.gnd_c4));
    expected_em_free_lifetime(&groups, model)
}

/// Expected EM-damage-free lifetime (hours) of the power-TSV array
/// (including V-S through-via segments).
pub fn tsv_array_lifetime(solution: &PdnSolution, model: &BlackModel) -> f64 {
    expected_em_free_lifetime(&groups_of(&solution.tsv), model)
}

/// Both array lifetimes of one solution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmLifetimes {
    /// C4 array expected EM-damage-free lifetime, hours.
    pub c4_hours: f64,
    /// TSV array expected EM-damage-free lifetime, hours.
    pub tsv_hours: f64,
}

/// Evaluates both arrays with the paper-calibrated Black models.
pub fn paper_em_lifetimes(solution: &PdnSolution) -> EmLifetimes {
    EmLifetimes {
        c4_hours: c4_array_lifetime(solution, &BlackModel::paper_c4()),
        tsv_hours: tsv_array_lifetime(solution, &BlackModel::paper_tsv()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::DesignScenario;
    use vstack_pdn::TsvTopology;

    #[test]
    fn regular_pdn_lifetime_decays_with_layers() {
        let mut prev_c4 = f64::INFINITY;
        let mut prev_tsv = f64::INFINITY;
        for n in [2usize, 4, 8] {
            let sol = DesignScenario::paper_baseline()
                .coarse_grid()
                .layers(n)
                .tsv_topology(TsvTopology::Few)
                .power_c4_fraction(0.25)
                .solve_regular_peak()
                .unwrap();
            let life = paper_em_lifetimes(&sol);
            assert!(life.c4_hours < prev_c4, "{n} layers c4");
            assert!(life.tsv_hours < prev_tsv, "{n} layers tsv");
            prev_c4 = life.c4_hours;
            prev_tsv = life.tsv_hours;
        }
    }

    #[test]
    fn vs_c4_lifetime_is_layer_independent() {
        let life = |n: usize| {
            let sol = DesignScenario::paper_baseline()
                .coarse_grid()
                .layers(n)
                .solve_voltage_stacked(0.0)
                .unwrap();
            paper_em_lifetimes(&sol).c4_hours
        };
        let (two, eight) = (life(2), life(8));
        assert!(
            (two - eight).abs() / two < 0.10,
            "V-S C4 lifetime must be ≈flat: {two} vs {eight}"
        );
    }

    #[test]
    fn vs_beats_regular_at_eight_layers() {
        let vs = DesignScenario::paper_baseline()
            .coarse_grid()
            .layers(8)
            .solve_voltage_stacked(0.0)
            .unwrap();
        let reg = DesignScenario::paper_baseline()
            .coarse_grid()
            .layers(8)
            .solve_regular_peak()
            .unwrap();
        let (vsl, regl) = (paper_em_lifetimes(&vs), paper_em_lifetimes(&reg));
        assert!(vsl.c4_hours > 3.0 * regl.c4_hours, "C4 advantage");
        assert!(vsl.tsv_hours > 2.0 * regl.tsv_hours, "TSV advantage");
    }
}
