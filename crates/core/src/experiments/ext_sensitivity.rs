//! Extension study: parameter sensitivity ("tornado") analysis.
//!
//! The paper's model "can help system designers evaluate the benefits and
//! costs of design scenarios" (§1) — which presumes knowing *which knobs
//! matter*. This experiment perturbs each electrical parameter ±30% around
//! the Table 1 baseline and reports the resulting swing of the V-S PDN's
//! worst IR drop at the 65% application-average imbalance, ranked by
//! influence.

use vstack_pdn::{PdnParams, TsvTopology};
use vstack_sc::compact::ScConverter;
use vstack_sparse::SolveError;

use crate::experiments::Fidelity;
use crate::scenario::DesignScenario;

/// The parameters the study perturbs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Knob {
    /// Package/board resistance per pad.
    PackageResistance,
    /// Single-TSV resistance.
    TsvResistance,
    /// C4 pad resistance.
    C4Resistance,
    /// On-chip grid segment resistance (via metal thickness).
    GridResistance,
    /// Converter series resistance (via switch conductance).
    ConverterResistance,
}

/// All knobs in display order.
pub const KNOBS: [Knob; 5] = [
    Knob::PackageResistance,
    Knob::TsvResistance,
    Knob::C4Resistance,
    Knob::GridResistance,
    Knob::ConverterResistance,
];

impl Knob {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Knob::PackageResistance => "package R / pad",
            Knob::TsvResistance => "TSV R",
            Knob::C4Resistance => "C4 pad R",
            Knob::GridResistance => "on-chip grid R",
            Knob::ConverterResistance => "converter R_SERIES",
        }
    }

    fn apply(self, params: &mut PdnParams, converter: &mut ScConverter, factor: f64) {
        match self {
            Knob::PackageResistance => params.package_r_per_pad_ohm *= factor,
            Knob::TsvResistance => params.tsv_resistance_ohm *= factor,
            Knob::C4Resistance => params.c4_resistance_ohm *= factor,
            Knob::GridResistance => params.grid_thickness_um /= factor,
            Knob::ConverterResistance => converter.g_tot /= factor,
        }
    }
}

/// One row of the tornado table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensitivityRow {
    /// Perturbed knob.
    pub knob: Knob,
    /// Worst drop with the knob at −30%.
    pub drop_low: f64,
    /// Worst drop at the baseline.
    pub drop_base: f64,
    /// Worst drop with the knob at +30%.
    pub drop_high: f64,
}

impl SensitivityRow {
    /// Total swing `drop(+30%) − drop(−30%)`.
    pub fn swing(&self) -> f64 {
        self.drop_high - self.drop_low
    }
}

/// Runs the tornado study at the given imbalance (the paper's 65%
/// application average by default), returning rows sorted by descending
/// swing magnitude.
///
/// # Errors
///
/// Propagates [`SolveError`].
pub fn tornado(
    fidelity: Fidelity,
    n_layers: usize,
    imbalance: f64,
) -> Result<Vec<SensitivityRow>, SolveError> {
    let solve = |knob: Option<(Knob, f64)>| -> Result<f64, SolveError> {
        let mut params = DesignScenario::paper_baseline().pdn_params().clone();
        params.grid_refinement = fidelity.grid_refinement();
        let mut converter = ScConverter::paper_28nm();
        if let Some((k, f)) = knob {
            k.apply(&mut params, &mut converter, f);
        }
        let scenario = DesignScenario::paper_baseline()
            .params(params)
            .converter(converter)
            .layers(n_layers)
            .tsv_topology(TsvTopology::Few)
            .power_c4_fraction(0.25)
            .converters_per_core(8);
        Ok(scenario.solve_voltage_stacked(imbalance)?.max_ir_drop_frac)
    };

    let base = solve(None)?;
    let mut rows = Vec::with_capacity(KNOBS.len());
    for knob in KNOBS {
        rows.push(SensitivityRow {
            knob,
            drop_low: solve(Some((knob, 0.7)))?,
            drop_base: base,
            drop_high: solve(Some((knob, 1.3)))?,
        });
    }
    rows.sort_by(|a, b| {
        b.swing()
            .abs()
            .partial_cmp(&a.swing().abs())
            .expect("finite swings")
    });
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<SensitivityRow> {
        tornado(Fidelity::Quick, 4, 0.65).unwrap()
    }

    #[test]
    fn converter_resistance_dominates_vs_noise() {
        // At 65% imbalance the converter drop is the main noise term, so
        // R_SERIES must rank first.
        let r = rows();
        assert_eq!(
            r[0].knob,
            Knob::ConverterResistance,
            "ranking: {:?}",
            r.iter().map(|x| x.knob.name()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn all_resistances_hurt_monotonically() {
        for row in rows() {
            assert!(
                row.drop_high >= row.drop_base && row.drop_base >= row.drop_low,
                "{}: {} / {} / {}",
                row.knob.name(),
                row.drop_low,
                row.drop_base,
                row.drop_high
            );
        }
    }

    #[test]
    fn rows_sorted_by_swing() {
        let r = rows();
        for w in r.windows(2) {
            assert!(w[0].swing().abs() >= w[1].swing().abs());
        }
        assert_eq!(r.len(), KNOBS.len());
    }
}
