//! Fig 3 — validation of the SC-converter compact model against detailed
//! switched-netlist simulation.
//!
//! The paper simulates its 28 nm converter with Spectre and shows the
//! compact model tracking (a) closed-loop efficiency over a 1.6–100 mA
//! load sweep and (b) open-loop efficiency *and* output-voltage drop over
//! 10–90 mA. We run the identical comparison against the
//! `vstack-sc::detailed` switched netlist.

use vstack_circuit::CircuitError;
use vstack_sc::compact::ScConverter;
use vstack_sc::detailed::DetailedSim;

/// One load point of the validation sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig3Row {
    /// Load current in mA.
    pub load_ma: f64,
    /// Compact-model efficiency (0–1).
    pub model_efficiency: f64,
    /// Detailed-simulation efficiency (0–1).
    pub sim_efficiency: f64,
    /// Compact-model output-voltage drop in mV.
    pub model_vdrop_mv: f64,
    /// Detailed-simulation output-voltage drop in mV.
    pub sim_vdrop_mv: f64,
}

impl Fig3Row {
    /// Absolute efficiency error between model and simulation.
    pub fn efficiency_error(&self) -> f64 {
        (self.model_efficiency - self.sim_efficiency).abs()
    }

    /// Absolute V-drop error in mV.
    pub fn vdrop_error_mv(&self) -> f64 {
        (self.model_vdrop_mv - self.sim_vdrop_mv).abs()
    }
}

/// The validation input voltage: a 2-layer stack presents 2 V across the
/// converter (paper §3.1 validates "for a 2-layer 3D-IC").
pub const V_IN: f64 = 2.0;

/// The paper's Fig 3a load points (mA), halving from 100 mA down to 1.6.
pub const CLOSED_LOOP_LOADS_MA: [f64; 7] = [1.6, 3.1, 6.3, 12.5, 25.0, 50.0, 100.0];

/// The paper's Fig 3b load points (mA).
pub const OPEN_LOOP_LOADS_MA: [f64; 5] = [10.0, 30.0, 50.0, 70.0, 90.0];

fn sweep(converter: ScConverter, loads_ma: &[f64]) -> Result<Vec<Fig3Row>, CircuitError> {
    let sim = DetailedSim::new(converter);
    loads_ma
        .iter()
        .map(|&ma| {
            let i = ma / 1000.0;
            let op = converter.operate(V_IN, 0.0, i);
            let m = sim.simulate(V_IN, i)?;
            Ok(Fig3Row {
                load_ma: ma,
                model_efficiency: op.efficiency,
                sim_efficiency: m.efficiency,
                model_vdrop_mv: op.v_drop * 1000.0,
                sim_vdrop_mv: m.v_drop * 1000.0,
            })
        })
        .collect()
}

/// Fig 3a: the closed-loop sweep.
///
/// # Errors
///
/// Propagates [`CircuitError`] from the detailed transient engine.
pub fn closed_loop_validation() -> Result<Vec<Fig3Row>, CircuitError> {
    sweep(ScConverter::paper_28nm_closed_loop(), &CLOSED_LOOP_LOADS_MA)
}

/// Fig 3b: the open-loop sweep.
///
/// # Errors
///
/// Propagates [`CircuitError`] from the detailed transient engine.
pub fn open_loop_validation() -> Result<Vec<Fig3Row>, CircuitError> {
    sweep(ScConverter::paper_28nm(), &OPEN_LOOP_LOADS_MA)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_loop_model_tracks_simulation() {
        let rows = open_loop_validation().unwrap();
        for r in &rows {
            assert!(
                r.efficiency_error() < 0.10,
                "at {} mA: model {:.3} vs sim {:.3}",
                r.load_ma,
                r.model_efficiency,
                r.sim_efficiency
            );
            assert!(
                r.vdrop_error_mv() < 12.0,
                "at {} mA: vdrop model {:.1} vs sim {:.1} mV",
                r.load_ma,
                r.model_vdrop_mv,
                r.sim_vdrop_mv
            );
        }
    }

    #[test]
    fn open_loop_vdrop_spans_paper_range() {
        // Fig 3b's right axis runs 0–60 mV across 10–90 mA.
        let rows = open_loop_validation().unwrap();
        assert!(rows.first().unwrap().model_vdrop_mv < 10.0);
        let last = rows.last().unwrap();
        assert!(
            last.model_vdrop_mv > 45.0 && last.model_vdrop_mv < 60.0,
            "got {:.1} mV at 90 mA",
            last.model_vdrop_mv
        );
    }

    #[test]
    fn closed_loop_model_tracks_simulation() {
        let rows = closed_loop_validation().unwrap();
        for r in &rows {
            assert!(
                r.efficiency_error() < 0.12,
                "at {} mA: model {:.3} vs sim {:.3}",
                r.load_ma,
                r.model_efficiency,
                r.sim_efficiency
            );
        }
    }

    #[test]
    fn closed_loop_efficiency_stays_high() {
        // Fig 3a: efficiency well above 50% across the whole sweep.
        let rows = closed_loop_validation().unwrap();
        for r in &rows {
            assert!(
                r.sim_efficiency > 0.5,
                "at {} mA closed-loop sim eff {:.3}",
                r.load_ma,
                r.sim_efficiency
            );
        }
    }
}
