//! Extension study: EM wearout as a *feedback* process.
//!
//! The paper's §5.1 lifetime numbers treat conductor currents as frozen at
//! time zero. In reality electromigration is a feedback loop: the pad (or
//! TSV) carrying the most current fails first, the survivors pick up its
//! share and run hotter, and the failure rate accelerates. This experiment
//! plays that loop forward and reports the **degradation curve** — worst
//! IR drop versus fraction of power pads failed — for the regular and the
//! voltage-stacked topology under the same workload.
//!
//! The loop is fully deterministic (no RNG):
//!
//! 1. Solve the faulted network through the rank-k SMW fault sketch
//!    (`solve_faulted_sketched`): each round's fault set is a superset of
//!    the last, so warm rounds are answered by a Woodbury update against
//!    the cached baseline in microseconds, and the sketch rebases (one
//!    exact [`vstack_sparse::solve_robust`] ladder solve) only when the
//!    accumulated rank outgrows its budget.
//! 2. Convert every surviving pad current and per-TSV bundle current into
//!    a Black's-equation median time-to-failure.
//! 3. Kill the earliest-failure quantile: the
//!    [`WearoutConfig::kill_fraction_per_round`] share of pads with the
//!    smallest TTFs (ties broken by net and ordinal), plus the same share
//!    of conductors in any TSV bundle whose per-TSV TTF falls inside that
//!    quantile's TTF span.
//! 4. Repeat until the IR drop exceeds [`WearoutConfig::drop_limit_frac`],
//!    the network disconnects ([`vstack_pdn::PdnError::Disconnected`] — a
//!    terminal outcome, not an error), the escalation ladder itself is
//!    exhausted (a structurally-connected but electrically dead network,
//!    e.g. a V-S stack whose entire ground-pad population has failed so
//!    the return path exists only through converter coupling — also
//!    terminal), or the round budget runs out.
//!
//! The expected result, and the reason this is a robustness argument for
//! charge recycling: the regular PDN funnels every layer's current through
//! the same bottom-layer pads, so each kill round removes a large current
//! share and the drop curve turns up steeply; the V-S stack's per-pad
//! current is layer-independent and its converters re-route mismatch, so
//! the same fault fraction costs far less headroom.

use vstack_em::black::{BlackModel, DEFAULT_JUNCTION_K};
use vstack_pdn::{FaultSet, FaultedSolution, PdnError, SolveScratch, TsvTopology};
use vstack_sparse::{pool, SolveError};

use crate::experiments::Fidelity;
use crate::scenario::DesignScenario;

/// Which conductor a TTF entry belongs to (deterministic sort key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum PadKind {
    Vdd,
    Gnd,
}

/// Configuration of the wearout loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WearoutConfig {
    /// Grid fidelity of the underlying solves.
    pub fidelity: Fidelity,
    /// Share of the total power-pad population killed per round (the
    /// earliest-failure quantile). Clamped to kill at least one pad.
    pub kill_fraction_per_round: f64,
    /// Round budget.
    pub max_rounds: usize,
    /// Terminal IR-drop fraction: the chip is considered dead once the
    /// worst drop exceeds this share of Vdd.
    pub drop_limit_frac: f64,
    /// Junction temperature the Black's-equation TTFs are evaluated at,
    /// kelvin. Defaults to [`DEFAULT_JUNCTION_K`] (the uncoupled 80 °C
    /// baseline); the thermal–EM–IR coupling loop overrides it with the
    /// solved stack temperature so both paths share one temperature
    /// source of truth.
    pub junction_temp_k: f64,
}

impl Default for WearoutConfig {
    fn default() -> Self {
        WearoutConfig {
            fidelity: Fidelity::Quick,
            kill_fraction_per_round: 0.05,
            max_rounds: 24,
            drop_limit_frac: 0.25,
            junction_temp_k: DEFAULT_JUNCTION_K,
        }
    }
}

/// One point of the degradation curve (one solve of the wearout loop).
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationPoint {
    /// Kill rounds applied before this solve (0 = pristine network).
    pub round: usize,
    /// Failed power pads as a fraction of the initial population.
    pub fraction_pads_failed: f64,
    /// Failed TSVs (all bundles) as an absolute count.
    pub failed_tsvs: usize,
    /// Worst IR drop of the surviving network, as a fraction of Vdd.
    pub max_ir_drop_frac: f64,
    /// Smallest Black's-equation median TTF among surviving pads, hours.
    pub earliest_pad_ttf_hours: f64,
    /// Whether this round's solve needed an escalation-ladder fallback.
    pub rescued: bool,
}

/// How a wearout run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum WearoutOutcome {
    /// Faults isolated part of the grid from every board rail.
    Disconnected {
        /// Kill rounds applied when disconnection was detected.
        round: usize,
        /// Floating unknowns reported by the connectivity check.
        floating_nodes: usize,
    },
    /// The IR drop crossed [`WearoutConfig::drop_limit_frac`].
    DropLimitExceeded {
        /// Kill rounds applied at the terminal solve.
        round: usize,
    },
    /// The escalation ladder was exhausted on a previously-solvable
    /// network: the accumulated faults left it structurally connected but
    /// electrically dead (near-singular), which no solver rung can fix.
    SolverExhausted {
        /// Kill rounds applied when the ladder gave up.
        round: usize,
        /// The final rung's error.
        error: SolveError,
    },
    /// The round budget ran out with the network still alive.
    Survived,
}

/// The degradation curve of one topology.
#[derive(Debug, Clone, PartialEq)]
pub struct WearoutCurve {
    /// `"regular"` or `"voltage-stacked"`.
    pub label: &'static str,
    /// Stacked layer count.
    pub n_layers: usize,
    /// One point per completed solve, in round order.
    pub points: Vec<DegradationPoint>,
    /// Terminal state of the run.
    pub outcome: WearoutOutcome,
    /// Escalation-ladder trails of every rescued solve, for the record.
    pub fallback_trails: Vec<String>,
}

impl WearoutCurve {
    /// IR drop of the last surviving solve.
    pub fn final_drop(&self) -> f64 {
        self.points.last().map_or(0.0, |p| p.max_ir_drop_frac)
    }

    /// Fraction of pads failed at the last surviving solve.
    pub fn final_fraction_failed(&self) -> f64 {
        self.points.last().map_or(0.0, |p| p.fraction_pads_failed)
    }

    /// Drop increase per unit pad-fraction failed, measured end-to-end —
    /// the curve's overall steepness (lower = more graceful degradation).
    pub fn degradation_slope(&self) -> f64 {
        let (Some(first), Some(last)) = (self.points.first(), self.points.last()) else {
            return 0.0;
        };
        let df = last.fraction_pads_failed - first.fraction_pads_failed;
        if df <= 0.0 {
            return 0.0;
        }
        (last.max_ir_drop_frac - first.max_ir_drop_frac) / df
    }
}

/// The per-round solve interface the loop drives: both topologies expose
/// the same fault-aware entry point, so the loop is written once.
/// `FnMut` so the closures can carry a [`SolveScratch`] across rounds —
/// the scratch holds the fault sketch (and the sparsity pattern and
/// Krylov workspace for its exact-solve paths), so successive rounds of
/// the same topology are SMW updates, not fresh ladder solves.
type FaultedSolver<'a> = dyn FnMut(&FaultSet) -> Result<FaultedSolution, PdnError> + 'a;

fn run_loop(
    label: &'static str,
    n_layers: usize,
    total_pads: usize,
    config: &WearoutConfig,
    solve: &mut FaultedSolver<'_>,
) -> Result<WearoutCurve, SolveError> {
    assert!(
        config.kill_fraction_per_round > 0.0 && config.kill_fraction_per_round < 1.0,
        "kill fraction must be in (0,1)"
    );
    let c4_model = BlackModel::paper_c4().at_temperature(config.junction_temp_k);
    let tsv_model = BlackModel::paper_tsv().at_temperature(config.junction_temp_k);
    let n_kill = ((total_pads as f64 * config.kill_fraction_per_round).round() as usize).max(1);

    let mut faults = FaultSet::new();
    let mut points = Vec::new();
    let mut fallback_trails = Vec::new();
    let mut failed_tsvs = 0usize;

    for round in 0..=config.max_rounds {
        let solved = match solve(&faults) {
            Ok(s) => s,
            Err(PdnError::Disconnected { floating_nodes, .. }) => {
                return Ok(WearoutCurve {
                    label,
                    n_layers,
                    points,
                    outcome: WearoutOutcome::Disconnected {
                        round,
                        floating_nodes,
                    },
                    fallback_trails,
                });
            }
            // A ladder-exhausted solve on a network that solved fine last
            // round means the faults have made it electrically dead (near-
            // singular yet structurally connected): terminal, like
            // disconnection. A failure on the *pristine* network is a
            // genuine error.
            Err(PdnError::Solve(e)) if !points.is_empty() => {
                return Ok(WearoutCurve {
                    label,
                    n_layers,
                    points,
                    outcome: WearoutOutcome::SolverExhausted { round, error: e },
                    fallback_trails,
                });
            }
            Err(PdnError::Solve(e)) => return Err(e),
        };
        if solved.report.was_rescued() {
            fallback_trails.push(solved.report.trail());
        }

        // Rank every surviving pad by its Black's-equation TTF. The sort
        // key includes (net, ordinal) so equal currents break ties
        // deterministically.
        let mut pad_ttfs: Vec<(f64, PadKind, usize)> = solved
            .vdd_pad_currents
            .iter()
            .map(|&(ord, i)| (c4_model.median_ttf_hours(i), PadKind::Vdd, ord))
            .chain(
                solved
                    .gnd_pad_currents
                    .iter()
                    .map(|&(ord, i)| (c4_model.median_ttf_hours(i), PadKind::Gnd, ord)),
            )
            .collect();
        pad_ttfs.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));

        points.push(DegradationPoint {
            round,
            fraction_pads_failed: (faults.failed_vdd_pad_count() + faults.failed_gnd_pad_count())
                as f64
                / total_pads as f64,
            failed_tsvs,
            max_ir_drop_frac: solved.solution.max_ir_drop_frac,
            earliest_pad_ttf_hours: pad_ttfs.first().map_or(f64::INFINITY, |p| p.0),
            rescued: solved.report.was_rescued(),
        });

        if solved.solution.max_ir_drop_frac > config.drop_limit_frac {
            return Ok(WearoutCurve {
                label,
                n_layers,
                points,
                outcome: WearoutOutcome::DropLimitExceeded { round },
                fallback_trails,
            });
        }
        if round == config.max_rounds {
            break;
        }

        // Kill the earliest-failure pad quantile…
        let victims = &pad_ttfs[..n_kill.min(pad_ttfs.len())];
        let t_star = victims.last().map_or(0.0, |v| v.0);
        for &(_, kind, ord) in victims {
            match kind {
                PadKind::Vdd => faults.fail_vdd_pad(ord),
                PadKind::Gnd => faults.fail_gnd_pad(ord),
            }
        }
        // …and the same share of any TSV bundle wearing out at least as
        // fast as those pads.
        for g in &solved.tsv_groups {
            if tsv_model.median_ttf_hours(g.current_per_tsv_a) <= t_star {
                let kill = ((g.alive * config.kill_fraction_per_round).ceil() as usize).max(1);
                faults.fail_tsvs(g.interface, g.core, kill);
                failed_tsvs += kill;
            }
        }
    }

    Ok(WearoutCurve {
        label,
        n_layers,
        points,
        outcome: WearoutOutcome::Survived,
        fallback_trails,
    })
}

fn scenario(config: &WearoutConfig, n_layers: usize) -> DesignScenario {
    let mut p = DesignScenario::paper_baseline().pdn_params().clone();
    p.grid_refinement = config.fidelity.grid_refinement();
    DesignScenario::paper_baseline()
        .params(p)
        .layers(n_layers)
        .tsv_topology(TsvTopology::Few)
        .power_c4_fraction(0.25)
}

/// Runs the wearout loop on the regular topology at full activity.
///
/// # Errors
///
/// Propagates [`SolveError`] only if the *pristine* network fails to
/// solve — disconnection and fault-induced ladder exhaustion are terminal
/// [`WearoutOutcome`]s, not errors.
pub fn regular_wearout(
    config: &WearoutConfig,
    n_layers: usize,
) -> Result<WearoutCurve, SolveError> {
    let s = scenario(config, n_layers);
    let pdn = s.regular_pdn();
    let loads = s.peak_loads();
    let total_pads = pdn.c4().vdd_count() + pdn.c4().gnd_count();
    let mut scratch = SolveScratch::new();
    run_loop("regular", n_layers, total_pads, config, &mut |f| {
        pdn.solve_faulted_sketched(&loads, f, &mut scratch)
    })
}

/// Runs the wearout loop on the voltage-stacked topology under the same
/// full-activity (balanced) workload.
///
/// # Errors
///
/// As for [`regular_wearout`].
pub fn vs_wearout(config: &WearoutConfig, n_layers: usize) -> Result<WearoutCurve, SolveError> {
    let s = scenario(config, n_layers);
    let pdn = s.voltage_stacked_pdn();
    let loads = s.peak_loads();
    let total_pads = pdn.c4().vdd_count() + pdn.c4().gnd_count();
    let mut scratch = SolveScratch::new();
    run_loop("voltage-stacked", n_layers, total_pads, config, &mut |f| {
        pdn.solve_faulted_sketched(&loads, f, &mut scratch)
    })
}

/// The full study: both topologies at every requested layer count, in
/// deterministic order (regular then V-S, shallow then deep).
///
/// The per-curve wearout loops are independent, so they fan out across the
/// active [`vstack_sparse::pool`] (`VSTACK_THREADS` controls the width).
/// Every curve is computed by the same deterministic serial loop, so the
/// result is bit-identical at any thread count; errors are reported for
/// the first failing curve in the serial order.
///
/// # Errors
///
/// As for [`regular_wearout`].
pub fn wearout_comparison(
    config: &WearoutConfig,
    layer_counts: &[usize],
) -> Result<Vec<WearoutCurve>, SolveError> {
    let tasks: Vec<(usize, bool)> = layer_counts
        .iter()
        .flat_map(|&n| [(n, false), (n, true)])
        .collect();
    pool::par_map(tasks, |(n, stacked)| {
        if stacked {
            vs_wearout(config, n)
        } else {
            regular_wearout(config, n)
        }
    })
    .into_iter()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> WearoutConfig {
        WearoutConfig {
            fidelity: Fidelity::Quick,
            kill_fraction_per_round: 0.10,
            max_rounds: 6,
            ..WearoutConfig::default()
        }
    }

    #[test]
    fn degradation_is_monotone_and_deterministic() {
        let a = regular_wearout(&quick(), 2).unwrap();
        let b = regular_wearout(&quick(), 2).unwrap();
        assert_eq!(a, b, "the loop must be bit-for-bit deterministic");
        assert!(a.points.len() >= 2);
        for w in a.points.windows(2) {
            assert!(w[1].fraction_pads_failed > w[0].fraction_pads_failed);
            assert!(w[1].max_ir_drop_frac >= w[0].max_ir_drop_frac * 0.99);
        }
        // Feedback: survivors run hotter, so the earliest TTF shrinks.
        assert!(
            a.points.last().unwrap().earliest_pad_ttf_hours < a.points[0].earliest_pad_ttf_hours
        );
    }

    #[test]
    fn vs_degrades_more_gracefully_than_regular() {
        let cfg = quick();
        let reg = regular_wearout(&cfg, 4).unwrap();
        let vs = vs_wearout(&cfg, 4).unwrap();
        assert!(
            vs.degradation_slope() < reg.degradation_slope(),
            "V-S slope {} must beat regular slope {}",
            vs.degradation_slope(),
            reg.degradation_slope()
        );
    }

    #[test]
    fn pooled_comparison_is_bit_identical_to_serial() {
        use std::sync::Arc;
        use vstack_sparse::pool::{with_pool, ThreadPool};
        let cfg = quick();
        let serial = with_pool(&Arc::new(ThreadPool::new(1)), || {
            wearout_comparison(&cfg, &[2]).unwrap()
        });
        let parallel = with_pool(&Arc::new(ThreadPool::new(4)), || {
            wearout_comparison(&cfg, &[2]).unwrap()
        });
        assert_eq!(serial, parallel);
    }

    #[test]
    fn junction_override_shifts_every_ttf() {
        let base = regular_wearout(&quick(), 2).unwrap();
        let hot = regular_wearout(
            &WearoutConfig {
                junction_temp_k: 393.15,
                ..quick()
            },
            2,
        )
        .unwrap();
        assert!(
            hot.points[0].earliest_pad_ttf_hours < base.points[0].earliest_pad_ttf_hours,
            "a 120 °C junction must wear out faster than the 80 °C default"
        );
    }

    #[test]
    fn killing_everything_ends_in_disconnection_not_panic() {
        let cfg = WearoutConfig {
            kill_fraction_per_round: 0.45,
            max_rounds: 12,
            drop_limit_frac: f64::INFINITY, // force the run to the bitter end
            ..quick()
        };
        let curve = regular_wearout(&cfg, 2).unwrap();
        assert!(
            matches!(curve.outcome, WearoutOutcome::Disconnected { .. }),
            "expected disconnection, got {:?}",
            curve.outcome
        );
    }
}
