//! Fig 6 — maximum on-chip IR drop vs workload imbalance for the 8-layer
//! processor.
//!
//! V-S curves sweep the interleaved high/low imbalance pattern for 2, 4, 6
//! and 8 converters per core ("Few TSV" topology); points that would
//! overload any 100 mA converter are skipped, exactly as in the paper.
//! Regular-PDN reference lines (Dense/Sparse/Few TSVs) are flat in
//! imbalance: their worst case is all layers fully active.

use vstack_pdn::{FaultSet, PdnError, SolveScratch, TsvTopology};
use vstack_sparse::{pool, SolveError};

use crate::experiments::Fidelity;
use crate::scenario::DesignScenario;

/// Converter counts swept (per core, per intermediate rail).
pub const CONVERTERS_PER_CORE: [usize; 4] = [2, 4, 6, 8];

/// One V-S sweep point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig6Point {
    /// Imbalance ratio (0–1).
    pub imbalance: f64,
    /// Maximum on-chip IR drop as a fraction of Vdd.
    pub max_ir_drop_frac: f64,
}

/// One V-S series (fixed converters/core).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Series {
    /// Converters per core.
    pub converters_per_core: usize,
    /// Points that satisfied the converter current limit.
    pub points: Vec<Fig6Point>,
    /// Imbalance values skipped due to converter overload.
    pub skipped: Vec<f64>,
}

impl Fig6Series {
    /// IR drop at an imbalance value, if that point was feasible.
    pub fn at(&self, imbalance: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| (p.imbalance - imbalance).abs() < 1e-9)
            .map(|p| p.max_ir_drop_frac)
    }

    /// The largest feasible imbalance of this series.
    pub fn max_feasible_imbalance(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|p| p.imbalance)
            .fold(None, |m, x| Some(m.map_or(x, |v: f64| v.max(x))))
    }

    /// Linear interpolation of the series at an arbitrary imbalance inside
    /// its feasible range.
    pub fn interpolate(&self, imbalance: f64) -> Option<f64> {
        let pts = &self.points;
        if pts.is_empty() {
            return None;
        }
        if imbalance <= pts[0].imbalance {
            return Some(pts[0].max_ir_drop_frac);
        }
        for w in pts.windows(2) {
            if imbalance <= w[1].imbalance {
                let f = (imbalance - w[0].imbalance) / (w[1].imbalance - w[0].imbalance);
                return Some(
                    w[0].max_ir_drop_frac + f * (w[1].max_ir_drop_frac - w[0].max_ir_drop_frac),
                );
            }
        }
        None
    }
}

/// Complete Fig 6 data.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Data {
    /// V-S sweeps, one per converter count.
    pub vs_series: Vec<Fig6Series>,
    /// `(topology, max IR drop)` reference lines for the regular PDN.
    pub regular_references: Vec<(TsvTopology, f64)>,
}

impl Fig6Data {
    /// The V-S series with `k` converters per core.
    pub fn vs(&self, k: usize) -> Option<&Fig6Series> {
        self.vs_series.iter().find(|s| s.converters_per_core == k)
    }

    /// The regular-PDN reference for a topology.
    pub fn regular(&self, topo: TsvTopology) -> Option<f64> {
        self.regular_references
            .iter()
            .find(|(t, _)| *t == topo)
            .map(|&(_, v)| v)
    }
}

/// Imbalance sweep values for a fidelity level.
pub fn imbalance_sweep(fidelity: Fidelity) -> Vec<f64> {
    match fidelity {
        Fidelity::Paper => (0..=10).map(|i| i as f64 / 10.0).collect(),
        Fidelity::Quick => vec![0.0, 0.25, 0.5, 0.75, 1.0],
    }
}

/// Regular-PDN reference topologies plotted alongside the V-S sweeps.
pub const REGULAR_REFERENCE_TOPOLOGIES: [TsvTopology; 3] =
    [TsvTopology::Dense, TsvTopology::Sparse, TsvTopology::Few];

/// One independent unit of Fig 6 work: a whole V-S imbalance sweep, or
/// one regular-PDN reference point.
enum Fig6Task {
    VsSweep(usize),
    Regular(TsvTopology),
}

/// The matching result variant.
enum Fig6Result {
    VsSweep(Fig6Series),
    Regular(TsvTopology, f64),
}

/// Runs the Fig 6 study on an `n_layers` stack (the paper uses 8).
///
/// The four V-S sweeps and three regular references are independent, so
/// they fan out across the active [`vstack_sparse::pool`]. Within each V-S
/// sweep every imbalance point re-solves the same topology, so the series
/// shares one [`SolveScratch`] (cached sparsity pattern + Krylov
/// workspace) across its points. Both levels of reuse are bit-identical
/// to the serial, scratch-free evaluation.
///
/// # Errors
///
/// Propagates [`SolveError`] from the PDN solves (first failing task in
/// series order).
pub fn ir_drop_study(fidelity: Fidelity, n_layers: usize) -> Result<Fig6Data, SolveError> {
    let base = || {
        let mut p = DesignScenario::paper_baseline().pdn_params().clone();
        p.grid_refinement = fidelity.grid_refinement();
        DesignScenario::paper_baseline()
            .params(p)
            .layers(n_layers)
            .tsv_topology(TsvTopology::Few)
            .power_c4_fraction(0.25)
    };

    let tasks: Vec<Fig6Task> = CONVERTERS_PER_CORE
        .iter()
        .map(|&k| Fig6Task::VsSweep(k))
        .chain(
            REGULAR_REFERENCE_TOPOLOGIES
                .iter()
                .map(|&t| Fig6Task::Regular(t)),
        )
        .collect();

    let results = pool::par_map(tasks, |task| -> Result<Fig6Result, SolveError> {
        match task {
            Fig6Task::VsSweep(k) => {
                let scenario = base().converters_per_core(k);
                let pdn = scenario.voltage_stacked_pdn();
                let mut scratch = SolveScratch::new();
                let mut points = Vec::new();
                let mut skipped = Vec::new();
                for x in imbalance_sweep(fidelity) {
                    let sol = pdn
                        .solve_faulted_scratch(
                            &scenario.interleaved_loads(x),
                            &FaultSet::new(),
                            None,
                            &mut scratch,
                        )
                        .map_err(PdnError::into_solve_error)?
                        .solution;
                    if sol.has_overload() {
                        skipped.push(x);
                    } else {
                        points.push(Fig6Point {
                            imbalance: x,
                            max_ir_drop_frac: sol.max_ir_drop_frac,
                        });
                    }
                }
                Ok(Fig6Result::VsSweep(Fig6Series {
                    converters_per_core: k,
                    points,
                    skipped,
                }))
            }
            Fig6Task::Regular(topo) => {
                let scenario = base().tsv_topology(topo).power_c4_fraction(0.5);
                let sol = scenario.solve_regular_peak()?;
                Ok(Fig6Result::Regular(topo, sol.max_ir_drop_frac))
            }
        }
    });

    let mut vs_series = Vec::new();
    let mut regular_references = Vec::new();
    for result in results {
        match result? {
            Fig6Result::VsSweep(series) => vs_series.push(series),
            Fig6Result::Regular(topo, drop) => regular_references.push((topo, drop)),
        }
    }

    Ok(Fig6Data {
        vs_series,
        regular_references,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Fig6Data {
        ir_drop_study(Fidelity::Quick, 4).unwrap()
    }

    #[test]
    fn vs_noise_grows_with_imbalance() {
        let d = data();
        let s = d.vs(8).unwrap();
        let lo = s.at(0.0).unwrap();
        let hi = s.at(1.0).unwrap();
        assert!(hi > lo, "noise must grow with imbalance: {lo} vs {hi}");
    }

    #[test]
    fn more_converters_less_noise() {
        let d = data();
        let four = d.vs(4).unwrap().at(0.5).unwrap();
        let eight = d.vs(8).unwrap().at(0.5).unwrap();
        assert!(eight < four);
    }

    #[test]
    fn two_converters_overload_before_full_imbalance() {
        // 2 converters/core can source at most 200 mA against a 380 mA
        // full-imbalance mismatch, so high-imbalance points must be skipped
        // (the paper's Fig 6 truncates this line around 50%).
        let d = data();
        let s = d.vs(2).unwrap();
        assert!(!s.skipped.is_empty(), "expected skipped points");
        assert!(s.max_feasible_imbalance().unwrap() <= 0.6);
    }

    #[test]
    fn regular_references_ordered_by_tsv_density() {
        let d = data();
        let dense = d.regular(TsvTopology::Dense).unwrap();
        let sparse = d.regular(TsvTopology::Sparse).unwrap();
        let few = d.regular(TsvTopology::Few).unwrap();
        assert!(dense < sparse && sparse < few);
    }

    #[test]
    fn vs_beats_dense_regular_at_low_imbalance() {
        // The paper's equal-area comparison: V-S (8 conv/core, Few TSV)
        // has lower IR drop than regular Dense-TSV below ≈50% imbalance.
        let d = data();
        let vs = d.vs(8).unwrap().at(0.25).unwrap();
        let dense = d.regular(TsvTopology::Dense).unwrap();
        assert!(vs < dense, "V-S {vs} should beat dense regular {dense}");
    }
}
