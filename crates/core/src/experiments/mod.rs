//! One driver per table/figure of the paper's evaluation (§4–§5).
//!
//! Every driver returns plain data structs; the `vstack-bench` binaries
//! render them as the paper's rows/series, and the workspace integration
//! tests assert the paper's qualitative claims against them.
//!
//! | Module | Paper artifact |
//! |--------|----------------|
//! | [`fig3`] | Fig 3 — SC-converter compact-model validation |
//! | [`fig5`] | Fig 5a/5b — TSV and C4 EM-lifetime vs layer count |
//! | [`fig6`] | Fig 6 — max IR drop vs workload imbalance |
//! | [`fig7`] | Fig 7 — Parsec power-distribution box plot |
//! | [`fig8`] | Fig 8 — system power efficiency vs imbalance |
//! | [`tables`] | Tables 1 & 2 — model parameters and TSV configs |
//!
//! Seven extension studies go beyond the paper: [`ext_closed_loop`]
//! (frequency-modulated converters at system level — the paper's deferred
//! future work), [`ext_transient`] (di/dt load-step response),
//! [`ext_trace`] (trace-driven noise replay with phase-correlated
//! workloads), [`ext_sensitivity`] (parameter tornado analysis),
//! [`ext_wearout`] (fault-injection EM wearout: progressive pad/TSV
//! kill-off with resilient re-solves, degradation curves per topology),
//! [`ext_faultmap`] (exhaustive what-if fault maps answered through the
//! rank-k SMW fault sketch) and [`ext_thermal_em`] (V-S vs regular
//! lifetime under the [`crate::coupled`] thermal–EM–IR fixed point).

pub mod ext_closed_loop;
pub mod ext_faultmap;
pub mod ext_sensitivity;
pub mod ext_thermal_em;
pub mod ext_trace;
pub mod ext_transient;
pub mod ext_wearout;
pub mod fig3;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod tables;

/// Fidelity switch shared by the PDN-solving experiments.
///
/// `Paper` fidelity uses the refined electrical grid and the full sweep
/// resolution (minutes of CPU); `Quick` coarsens the grid and thins the
/// sweeps for CI-speed runs with the same qualitative shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fidelity {
    /// Full grid, full sweeps — use for reported numbers.
    #[default]
    Paper,
    /// Coarse grid, thinned sweeps — use in tests.
    Quick,
}

impl Fidelity {
    pub(crate) fn grid_refinement(self) -> usize {
        match self {
            Fidelity::Paper => 3,
            Fidelity::Quick => 1,
        }
    }
}
