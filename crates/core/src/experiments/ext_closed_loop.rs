//! Extension study: closed-loop converter control at the system level.
//!
//! The paper evaluates open-loop SC converters and twice defers
//! closed-loop control to future work (§3.1, §5.3). This experiment runs
//! it: the same Fig 8 sweep with frequency-modulated converters, solved by
//! the fixed-point iteration of
//! [`vstack_pdn::VstackPdn::solve_closed_loop`].
//!
//! Expected physics: closed-loop converters scale their switching losses
//! with delivered current, so (a) light-imbalance efficiency rises
//! dramatically, and (b) the "more converters cost efficiency" penalty of
//! Fig 8 largely disappears — at the price of a higher output impedance
//! (more IR noise) at light load.

use vstack_pdn::TsvTopology;
use vstack_sc::compact::ScConverter;
use vstack_sparse::SolveError;

use crate::experiments::Fidelity;
use crate::scenario::DesignScenario;

/// One sweep point comparing the two control policies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlComparisonPoint {
    /// Imbalance ratio (0–1).
    pub imbalance: f64,
    /// Open-loop system efficiency.
    pub open_efficiency: f64,
    /// Closed-loop system efficiency.
    pub closed_efficiency: f64,
    /// Open-loop max IR drop (fraction of Vdd).
    pub open_ir_drop: f64,
    /// Closed-loop max IR drop.
    pub closed_ir_drop: f64,
    /// Fixed-point iterations the closed-loop solve needed.
    pub iterations: usize,
}

/// One series (fixed converters/core) of the comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlComparison {
    /// Converters per core.
    pub converters_per_core: usize,
    /// Feasible sweep points (overloaded points skipped, as in Fig 6).
    pub points: Vec<ControlComparisonPoint>,
}

impl ControlComparison {
    /// Point at an imbalance value, if feasible.
    pub fn at(&self, imbalance: f64) -> Option<&ControlComparisonPoint> {
        self.points
            .iter()
            .find(|p| (p.imbalance - imbalance).abs() < 1e-9)
    }
}

/// Runs the open-vs-closed-loop study on an `n_layers` stack.
///
/// # Errors
///
/// Propagates [`SolveError`] from the PDN solves.
pub fn control_policy_study(
    fidelity: Fidelity,
    n_layers: usize,
    converter_counts: &[usize],
) -> Result<Vec<ControlComparison>, SolveError> {
    let sweep: Vec<f64> = match fidelity {
        Fidelity::Paper => (1..=10).map(|i| i as f64 / 10.0).collect(),
        Fidelity::Quick => vec![0.1, 0.5, 1.0],
    };
    let base = || {
        let mut p = DesignScenario::paper_baseline().pdn_params().clone();
        p.grid_refinement = fidelity.grid_refinement();
        DesignScenario::paper_baseline()
            .params(p)
            .layers(n_layers)
            .tsv_topology(TsvTopology::Few)
            .power_c4_fraction(0.25)
    };

    let mut out = Vec::new();
    for &k in converter_counts {
        let open_scenario = base().converters_per_core(k);
        let closed_scenario = base()
            .converters_per_core(k)
            .converter(ScConverter::paper_28nm_closed_loop());
        let open_pdn = open_scenario.voltage_stacked_pdn();
        let closed_pdn = closed_scenario.voltage_stacked_pdn();
        let mut points = Vec::new();
        for &x in &sweep {
            let loads = open_scenario.interleaved_loads(x);
            let open = open_pdn.solve(&loads)?;
            let (closed, iterations) = closed_pdn.solve_closed_loop(&loads)?;
            if open.has_overload() || closed.has_overload() {
                continue;
            }
            points.push(ControlComparisonPoint {
                imbalance: x,
                open_efficiency: open.efficiency(),
                closed_efficiency: closed.efficiency(),
                open_ir_drop: open.max_ir_drop_frac,
                closed_ir_drop: closed.max_ir_drop_frac,
                iterations,
            });
        }
        out.push(ControlComparison {
            converters_per_core: k,
            points,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study() -> Vec<ControlComparison> {
        control_policy_study(Fidelity::Quick, 4, &[4, 8]).unwrap()
    }

    #[test]
    fn closed_loop_wins_at_light_imbalance() {
        for series in study() {
            let p = series.at(0.1).unwrap();
            assert!(
                p.closed_efficiency > p.open_efficiency + 0.02,
                "k={}: closed {} vs open {}",
                series.converters_per_core,
                p.closed_efficiency,
                p.open_efficiency
            );
        }
    }

    #[test]
    fn closed_loop_removes_converter_count_penalty() {
        let s = study();
        let four = s.iter().find(|c| c.converters_per_core == 4).unwrap();
        let eight = s.iter().find(|c| c.converters_per_core == 8).unwrap();
        let open_gap =
            four.at(0.1).unwrap().open_efficiency - eight.at(0.1).unwrap().open_efficiency;
        let closed_gap =
            four.at(0.1).unwrap().closed_efficiency - eight.at(0.1).unwrap().closed_efficiency;
        assert!(
            closed_gap < 0.5 * open_gap,
            "closed-loop should shrink the k-penalty: open {open_gap}, closed {closed_gap}"
        );
    }

    #[test]
    fn closed_loop_noise_tradeoff_is_bounded() {
        // Frequency scaling raises R_SSL at light load, so closed-loop IR
        // drop exceeds open-loop by up to ≈5× there — the efficiency gain
        // is paid in noise. Bound the tradeoff to one order of magnitude.
        for series in study() {
            for p in &series.points {
                assert!(
                    p.closed_ir_drop < 8.0 * p.open_ir_drop.max(0.005),
                    "closed {} vs open {}",
                    p.closed_ir_drop,
                    p.open_ir_drop
                );
                assert!(p.iterations < 50);
            }
        }
    }
}
