//! Fig 8 — system power efficiency of the 8-layer processor vs workload
//! imbalance.
//!
//! V-S series (2/4/6/8 converters per core): total load power divided by
//! total power drawn from the off-chip source, including every converter's
//! switching overhead — all taken from the full network solve.
//!
//! Reference series "Reg. PDN, SC converters provide all power": in a
//! conventional PDN with on-chip SC regulation (paper ref \[19\]) the
//! converters carry **all** the load current, not just the inter-layer
//! mismatch, so their conduction and switching losses apply to the whole
//! power budget. Computed analytically from the compact model, with eight
//! converters per core (the minimum that keeps a fully-active 475 mA core
//! within the per-converter 100 mA rating).

use vstack_power::mcpat::ActivityVector;
use vstack_power::workload::ImbalancePattern;
use vstack_sc::compact::ScConverter;
use vstack_sparse::SolveError;

use crate::experiments::fig6::CONVERTERS_PER_CORE;
use crate::experiments::Fidelity;
use crate::scenario::DesignScenario;

/// One efficiency sweep point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig8Point {
    /// Imbalance ratio (0–1).
    pub imbalance: f64,
    /// System power efficiency (0–1).
    pub efficiency: f64,
}

/// One series of Fig 8.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig8Series {
    /// Legend label matching the paper.
    pub label: String,
    /// Converters per core (0 for the regular-PDN reference).
    pub converters_per_core: usize,
    /// Feasible sweep points.
    pub points: Vec<Fig8Point>,
}

impl Fig8Series {
    /// Efficiency at an imbalance value, if present.
    pub fn at(&self, imbalance: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| (p.imbalance - imbalance).abs() < 1e-9)
            .map(|p| p.efficiency)
    }
}

/// Complete Fig 8 data.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig8Data {
    /// V-S series, one per converter count.
    pub vs_series: Vec<Fig8Series>,
    /// The regular-PDN "SC provides all power" reference.
    pub regular_sc_reference: Fig8Series,
}

impl Fig8Data {
    /// The V-S series with `k` converters per core.
    pub fn vs(&self, k: usize) -> Option<&Fig8Series> {
        self.vs_series.iter().find(|s| s.converters_per_core == k)
    }
}

/// The paper's Fig 8 sweep: 10%–100% imbalance.
pub fn imbalance_sweep(fidelity: Fidelity) -> Vec<f64> {
    match fidelity {
        Fidelity::Paper => (1..=10).map(|i| i as f64 / 10.0).collect(),
        Fidelity::Quick => vec![0.1, 0.5, 1.0],
    }
}

/// Runs the Fig 8 study on an `n_layers` stack (the paper uses 8).
///
/// # Errors
///
/// Propagates [`SolveError`] from the PDN solves.
pub fn efficiency_study(fidelity: Fidelity, n_layers: usize) -> Result<Fig8Data, SolveError> {
    let base = || {
        let mut p = DesignScenario::paper_baseline().pdn_params().clone();
        p.grid_refinement = fidelity.grid_refinement();
        DesignScenario::paper_baseline()
            .params(p)
            .layers(n_layers)
            .power_c4_fraction(0.25)
    };

    let mut vs_series = Vec::new();
    for &k in &CONVERTERS_PER_CORE {
        let scenario = base().converters_per_core(k);
        let pdn = scenario.voltage_stacked_pdn();
        let mut points = Vec::new();
        for x in imbalance_sweep(fidelity) {
            let sol = pdn.solve(&scenario.interleaved_loads(x))?;
            if !sol.has_overload() {
                points.push(Fig8Point {
                    imbalance: x,
                    efficiency: sol.efficiency(),
                });
            }
        }
        vs_series.push(Fig8Series {
            label: format!("V-S PDN, {k} converters / core"),
            converters_per_core: k,
            points,
        });
    }

    let scenario = base();
    let points = imbalance_sweep(fidelity)
        .into_iter()
        .map(|x| Fig8Point {
            imbalance: x,
            efficiency: regular_pdn_sc_efficiency(
                scenario.pdn_params(),
                n_layers,
                x,
                *scenario.converter_design(),
                8,
            ),
        })
        .collect();

    Ok(Fig8Data {
        vs_series,
        regular_sc_reference: Fig8Series {
            label: "Reg. PDN, SC converters provide all power".to_owned(),
            converters_per_core: 0,
            points,
        },
    })
}

/// Analytic efficiency of a regular PDN whose on-chip SC converters carry
/// the entire load current (paper ref \[19\]'s architecture).
pub fn regular_pdn_sc_efficiency(
    params: &vstack_pdn::PdnParams,
    n_layers: usize,
    imbalance: f64,
    converter: ScConverter,
    converters_per_core: usize,
) -> f64 {
    let pattern = ImbalancePattern::new(imbalance);
    let mut p_out_total = 0.0;
    let mut p_in_total = 0.0;
    for layer in 0..n_layers {
        let activity = pattern.layer_activity(layer);
        let core_power = params.core.power(&ActivityVector::uniform(activity));
        let i_core = core_power.current_a(params.vdd);
        let i_conv = i_core / converters_per_core as f64;
        // Converters down-convert from a 2·Vdd distribution rail.
        let op = converter.operate(2.0 * params.vdd, 0.0, i_conv);
        let per_conv_in = op.p_out + op.p_conduction + op.p_parasitic;
        let n_conv = params.cores_per_layer() * converters_per_core;
        p_out_total += op.p_out * n_conv as f64;
        p_in_total += per_conv_in * n_conv as f64;
    }
    p_out_total / p_in_total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Fig8Data {
        efficiency_study(Fidelity::Quick, 4).unwrap()
    }

    #[test]
    fn efficiency_decreases_with_imbalance() {
        let d = data();
        let s = d.vs(4).unwrap();
        assert!(s.at(0.1).unwrap() > s.at(1.0).unwrap());
    }

    #[test]
    fn more_converters_cost_efficiency() {
        // Open-loop converters burn fixed switching power, so spreading the
        // same mismatch across more converters hurts (paper §5.3).
        let d = data();
        let two = d.vs(2).unwrap().at(0.1).unwrap();
        let eight = d.vs(8).unwrap().at(0.1).unwrap();
        assert!(two > eight, "2/core {two} vs 8/core {eight}");
    }

    #[test]
    fn vs_beats_regular_sc_everywhere() {
        // V-S converters only process the mismatch; regular-PDN converters
        // process everything (paper §5.3's closing comparison).
        let d = data();
        for x in [0.1, 0.5, 1.0] {
            let reg = d.regular_sc_reference.at(x).unwrap();
            for k in CONVERTERS_PER_CORE {
                if let Some(vs) = d.vs(k).unwrap().at(x) {
                    assert!(vs > reg, "k={k}, x={x}: {vs} vs {reg}");
                }
            }
        }
    }

    #[test]
    fn efficiencies_are_probabilities() {
        let d = data();
        for s in d.vs_series.iter().chain([&d.regular_sc_reference]) {
            for p in &s.points {
                assert!(p.efficiency > 0.0 && p.efficiency < 1.0);
            }
        }
    }
}
