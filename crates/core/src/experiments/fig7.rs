//! Fig 7 — distributions of workload imbalance within and across Parsec
//! applications.
//!
//! One thousand 2k-cycle samples per application (Gem5 + McPAT substitute,
//! see `vstack-power::workload`), reported as the paper's box plot: per-app
//! min / 25th / median / 75th / max of 16-core layer power, plus the
//! derived imbalance statistics the paper quotes in §5.2.

use vstack_power::workload::{Distribution, ParsecApp, WorkloadSampler, PARSEC_APPS};

/// One row of the box plot.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Row {
    /// Application.
    pub app: ParsecApp,
    /// Five-number summary of 16-core layer power (watts).
    pub power_w: Distribution,
    /// The application's maximum intra-app imbalance (0–1).
    pub max_imbalance: f64,
}

/// Complete Fig 7 data plus the §5.2 headline statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Data {
    /// Per-application rows, in the paper's order.
    pub rows: Vec<Fig7Row>,
    /// Average of per-app maximum imbalance (paper: ≈65%).
    pub average_max_imbalance: f64,
    /// Maximum imbalance across all samples of all apps (paper: >90%).
    pub global_max_imbalance: f64,
}

impl Fig7Data {
    /// Row for one application.
    pub fn row(&self, app: ParsecApp) -> Option<&Fig7Row> {
        self.rows.iter().find(|r| r.app == app)
    }
}

/// Runs the Fig 7 study with the paper's sampling setup.
pub fn workload_distributions() -> Fig7Data {
    let sampler = WorkloadSampler::paper_setup();
    let rows = PARSEC_APPS
        .iter()
        .map(|&app| {
            let powers: Vec<f64> = sampler
                .samples(app)
                .iter()
                .map(|s| s.layer_power_w(16))
                .collect();
            Fig7Row {
                app,
                power_w: Distribution::from_values(&powers),
                max_imbalance: sampler.max_imbalance(app),
            }
        })
        .collect();
    Fig7Data {
        rows,
        average_max_imbalance: sampler.average_max_imbalance(),
        global_max_imbalance: sampler.global_max_imbalance(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_statistics_match_paper() {
        let d = workload_distributions();
        assert!(
            (0.60..=0.70).contains(&d.average_max_imbalance),
            "≈65%, got {}",
            d.average_max_imbalance
        );
        assert!(d.global_max_imbalance > 0.90);
        let bs = d.row(ParsecApp::Blackscholes).unwrap();
        assert!(bs.max_imbalance < 0.12, "blackscholes ≈10%");
    }

    #[test]
    fn per_app_boxes_are_ordered() {
        for r in workload_distributions().rows {
            let p = r.power_w;
            assert!(p.min <= p.q25 && p.q25 <= p.median);
            assert!(p.median <= p.q75 && p.q75 <= p.max);
            assert!(p.min > 0.0, "leakage floors every sample above zero");
        }
    }

    #[test]
    fn apps_differ_in_median_power() {
        // Fig 7 shows large cross-app differences (canneal low, swaptions
        // and blackscholes high).
        let d = workload_distributions();
        let canneal = d.row(ParsecApp::Canneal).unwrap().power_w.median;
        let blackscholes = d.row(ParsecApp::Blackscholes).unwrap().power_w.median;
        assert!(blackscholes > 1.5 * canneal);
    }

    #[test]
    fn all_thirteen_apps_present() {
        assert_eq!(workload_distributions().rows.len(), 13);
    }
}
