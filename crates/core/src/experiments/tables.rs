//! Tables 1 and 2 — the model-parameter tables, regenerated from the live
//! configuration structs so the printed tables can never drift from the
//! code.

use vstack_pdn::tsv::TSV_TOPOLOGIES;
use vstack_pdn::{PdnParams, TsvTopology};

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Parameter name as printed in the paper.
    pub name: &'static str,
    /// Formatted value.
    pub value: String,
}

/// Regenerates Table 1 from a parameter set.
pub fn table1(params: &PdnParams) -> Vec<Table1Row> {
    vec![
        Table1Row {
            name: "C4 Pad Pitch (um)",
            value: format!("{:.0}", params.c4_pitch_um),
        },
        Table1Row {
            name: "C4 Pad Resistance (mOhm)",
            value: format!("{:.0}", params.c4_resistance_ohm * 1000.0),
        },
        Table1Row {
            name: "Minimum TSV Pitch (um)",
            value: format!("{:.0}", params.tsv_min_pitch_um),
        },
        Table1Row {
            name: "TSV Diameter (um)",
            value: format!("{:.0}", params.tsv_diameter_um),
        },
        Table1Row {
            name: "Single TSV's Resistance (mOhm)",
            value: format!("{:.3}", params.tsv_resistance_ohm * 1000.0),
        },
        Table1Row {
            name: "TSV Keep-Out Zone's Side Length (um)",
            value: format!("{:.2}", params.tsv_koz_side_um),
        },
        Table1Row {
            name: "On-chip PDN's Pitch,Width,Thickness (um)",
            value: format!(
                "{:.0},{:.0},{:.2}",
                params.grid_pitch_um, params.grid_width_um, params.grid_thickness_um
            ),
        },
    ]
}

/// One row of Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// TSV topology.
    pub topology: TsvTopology,
    /// Effective pitch in µm.
    pub effective_pitch_um: f64,
    /// Power TSVs per core.
    pub tsvs_per_core: usize,
    /// KoZ area overhead as a fraction of core area.
    pub area_overhead: f64,
}

/// Regenerates Table 2.
pub fn table2(params: &PdnParams) -> Vec<Table2Row> {
    TSV_TOPOLOGIES
        .iter()
        .map(|&t| Table2Row {
            topology: t,
            effective_pitch_um: t.effective_pitch_um(),
            tsvs_per_core: t.tsvs_per_core(),
            area_overhead: t.area_overhead(params),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_values() {
        let rows = table1(&PdnParams::paper_defaults());
        let get = |name: &str| {
            rows.iter()
                .find(|r| r.name.starts_with(name))
                .map(|r| r.value.clone())
                .unwrap()
        };
        assert_eq!(get("C4 Pad Pitch"), "200");
        assert_eq!(get("C4 Pad Resistance"), "10");
        assert_eq!(get("Minimum TSV Pitch"), "10");
        assert_eq!(get("TSV Diameter"), "5");
        assert_eq!(get("Single TSV's Resistance"), "44.539");
        assert_eq!(get("TSV Keep-Out"), "9.88");
    }

    #[test]
    fn table2_matches_paper_values() {
        let rows = table2(&PdnParams::paper_defaults());
        assert_eq!(rows.len(), 3);
        let dense = &rows[0];
        assert_eq!(dense.effective_pitch_um, 20.0);
        assert_eq!(dense.tsvs_per_core, 6650);
        assert!((dense.area_overhead - 0.242).abs() < 0.01);
        let few = &rows[2];
        assert_eq!(few.tsvs_per_core, 110);
        assert!((few.area_overhead - 0.004).abs() < 0.001);
    }
}
