//! Extension study: V-S vs regular PDN lifetime under thermal coupling.
//!
//! The paper's Fig 5 lifetime comparison evaluates Black's equation at a
//! fixed 80 °C junction. This study re-runs the comparison through the
//! [`crate::coupled`] thermal–EM–IR fixed point: each design point's own
//! power map sets its per-layer temperatures, which scale both the EM
//! rates (exponentially) and the on-chip grid resistance (linearly).
//! Because deeper stacks run hotter — the 8-layer hotspot sits near
//! 90 °C against a 2-layer stack's ~55 °C — coupling widens the paper's
//! layer-count lifetime gap: the uncoupled study *understates* how much
//! the regular PDN loses at depth, and the per-layer gradient stresses
//! the bottom-layer C4s of the regular PDN hardest, exactly where its
//! current concentrates.

use vstack_pdn::{PdnError, SolveScratch, TsvTopology};
use vstack_sparse::pool;

use crate::coupled::{solve_coupled, CoupledConfig, CoupledLoad};
use crate::em_study::EmLifetimes;
use crate::experiments::Fidelity;
use crate::scenario::DesignScenario;

/// Configuration of the thermal-coupling lifetime study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalEmConfig {
    /// Grid fidelity of the electrical solves.
    pub fidelity: Fidelity,
    /// The coupled-driver knobs (thermal stack, damping, tolerance).
    pub coupled: CoupledConfig,
    /// Imbalance of the V-S interleaved workload (0 = balanced, matching
    /// the regular PDN's full-activity comparison basis).
    pub imbalance: f64,
}

impl Default for ThermalEmConfig {
    fn default() -> Self {
        ThermalEmConfig {
            fidelity: Fidelity::Paper,
            coupled: CoupledConfig::paper_air_cooled(),
            imbalance: 0.0,
        }
    }
}

/// One design point of the study.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalEmPoint {
    /// `"regular"` or `"voltage-stacked"`.
    pub label: &'static str,
    /// Stacked layer count.
    pub n_layers: usize,
    /// Fixed-point iterations the coupled solve took.
    pub iterations: usize,
    /// Whether the coupling loop converged.
    pub converged: bool,
    /// Final raw temperature update, °C.
    pub residual_c: f64,
    /// Hotspot cell temperature, °C.
    pub peak_temperature_c: f64,
    /// Mean bottom-layer (C4-side) temperature, °C.
    pub bottom_layer_c: f64,
    /// EM lifetimes at the coupled temperatures.
    pub em_coupled: EmLifetimes,
    /// EM lifetimes at the fixed 80 °C baseline.
    pub em_uncoupled: EmLifetimes,
}

impl ThermalEmPoint {
    /// Fractional C4-lifetime change from coupling:
    /// `(uncoupled − coupled) / uncoupled`. Positive means the fixed-
    /// junction study was optimistic for this design point.
    pub fn c4_coupling_delta(&self) -> f64 {
        (self.em_uncoupled.c4_hours - self.em_coupled.c4_hours) / self.em_uncoupled.c4_hours
    }

    /// Like [`ThermalEmPoint::c4_coupling_delta`], for the TSV array.
    pub fn tsv_coupling_delta(&self) -> f64 {
        (self.em_uncoupled.tsv_hours - self.em_coupled.tsv_hours) / self.em_uncoupled.tsv_hours
    }
}

fn scenario(config: &ThermalEmConfig, n_layers: usize) -> DesignScenario {
    let mut p = DesignScenario::paper_baseline().pdn_params().clone();
    p.grid_refinement = config.fidelity.grid_refinement();
    DesignScenario::paper_baseline()
        .params(p)
        .layers(n_layers)
        .tsv_topology(TsvTopology::Few)
        .power_c4_fraction(0.25)
}

fn run_point(
    config: &ThermalEmConfig,
    n_layers: usize,
    stacked: bool,
) -> Result<ThermalEmPoint, PdnError> {
    let s = scenario(config, n_layers);
    let (label, load) = if stacked {
        (
            "voltage-stacked",
            CoupledLoad::VoltageStacked(config.imbalance),
        )
    } else {
        ("regular", CoupledLoad::RegularPeak)
    };
    let mut scratch = SolveScratch::new();
    let out = solve_coupled(&s, load, &config.coupled, None, &mut scratch)?;
    Ok(ThermalEmPoint {
        label,
        n_layers,
        iterations: out.report.iterations,
        converged: out.report.converged,
        residual_c: out.report.residual_c,
        peak_temperature_c: out.report.peak_temperature_c,
        bottom_layer_c: out.report.layer_temps_c[0],
        em_coupled: out.report.em,
        em_uncoupled: out.report.em_uncoupled,
    })
}

/// The full study: both topologies at every requested layer count, in
/// deterministic order (regular then V-S, shallow then deep), fanned out
/// across the active [`vstack_sparse::pool`].
///
/// # Errors
///
/// Propagates the first [`PdnError`] in serial order.
pub fn thermal_em_comparison(
    config: &ThermalEmConfig,
    layer_counts: &[usize],
) -> Result<Vec<ThermalEmPoint>, PdnError> {
    let tasks: Vec<(usize, bool)> = layer_counts
        .iter()
        .flat_map(|&n| [(n, false), (n, true)])
        .collect();
    pool::par_map(tasks, |(n, stacked)| run_point(config, n, stacked))
        .into_iter()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ThermalEmConfig {
        ThermalEmConfig {
            fidelity: Fidelity::Quick,
            ..ThermalEmConfig::default()
        }
    }

    #[test]
    fn every_point_converges_and_deeper_runs_hotter() {
        let points = thermal_em_comparison(&quick(), &[2, 8]).unwrap();
        assert_eq!(points.len(), 4);
        for p in &points {
            assert!(
                p.converged,
                "{} {}L: residual {}",
                p.label, p.n_layers, p.residual_c
            );
            assert!(p.iterations >= 2);
        }
        let reg2 = &points[0];
        let reg8 = &points[2];
        assert!(reg8.peak_temperature_c > reg2.peak_temperature_c + 10.0);
    }

    #[test]
    fn coupling_shortens_the_eight_layer_regular_lifetime() {
        let points = thermal_em_comparison(&quick(), &[8]).unwrap();
        let reg = points.iter().find(|p| p.label == "regular").unwrap();
        // The 8-layer stack runs hotter than the 80 °C baseline, so the
        // coupled MTTF must be measurably shorter.
        assert!(
            reg.c4_coupling_delta() > 0.01,
            "coupled-vs-uncoupled C4 delta {:.4}",
            reg.c4_coupling_delta()
        );
    }

    #[test]
    fn deterministic_across_pool_widths() {
        use std::sync::Arc;
        use vstack_sparse::pool::{with_pool, ThreadPool};
        let cfg = quick();
        let serial = with_pool(&Arc::new(ThreadPool::new(1)), || {
            thermal_em_comparison(&cfg, &[2]).unwrap()
        });
        let parallel = with_pool(&Arc::new(ThreadPool::new(4)), || {
            thermal_em_comparison(&cfg, &[2]).unwrap()
        });
        assert_eq!(serial, parallel);
    }
}
