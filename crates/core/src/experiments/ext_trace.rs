//! Extension study: trace-driven noise analysis.
//!
//! The paper's Fig 6 sweeps a *static* imbalance knob; real machines see
//! imbalance arrive as program phases align and diverge. This experiment
//! replays time-correlated Parsec activity traces (one stream per layer)
//! through the V-S PDN, one quasi-static solve per 2k-cycle window, and
//! reports what a static analysis cannot: how often the worst case
//! actually occurs, and how many windows would overload the converters.
//!
//! (Quasi-static is the right regime: a 2k-cycle window at 1 GHz is 2 µs,
//! three orders of magnitude above the decap settling times measured by
//! [`crate::experiments::ext_transient`].)

use vstack_pdn::{StackLoads, TsvTopology};
use vstack_power::workload::{ParsecApp, WorkloadSampler};
use vstack_sparse::SolveError;

use crate::experiments::Fidelity;
use crate::scenario::DesignScenario;

/// Summary of a replayed trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStudy {
    /// Applications assigned to the layers (bottom first).
    pub apps: Vec<ParsecApp>,
    /// Windows replayed.
    pub windows: usize,
    /// Worst IR drop of each window.
    pub drops: Vec<f64>,
    /// Number of windows with at least one overloaded converter.
    pub overloaded_windows: usize,
}

impl TraceStudy {
    /// The worst drop seen anywhere in the trace.
    pub fn worst_drop(&self) -> f64 {
        self.drops.iter().copied().fold(0.0, f64::max)
    }

    /// Mean per-window worst drop.
    pub fn mean_drop(&self) -> f64 {
        self.drops.iter().sum::<f64>() / self.drops.len() as f64
    }

    /// Fraction of windows whose drop exceeds `threshold`.
    pub fn exceedance(&self, threshold: f64) -> f64 {
        self.drops.iter().filter(|d| **d > threshold).count() as f64 / self.drops.len() as f64
    }
}

/// Replays `windows` windows of per-layer application traces through the
/// V-S PDN. `apps[l]` runs on layer `l`; each layer gets its own trace
/// stream.
///
/// # Errors
///
/// Propagates [`SolveError`] from the per-window solves.
///
/// # Panics
///
/// Panics if `apps` is empty or `windows == 0`.
pub fn replay_trace(
    fidelity: Fidelity,
    apps: &[ParsecApp],
    windows: usize,
    converters_per_core: usize,
) -> Result<TraceStudy, SolveError> {
    assert!(!apps.is_empty(), "need at least one layer");
    assert!(windows > 0, "need at least one window");
    let mut params = DesignScenario::paper_baseline().pdn_params().clone();
    params.grid_refinement = fidelity.grid_refinement();
    let scenario = DesignScenario::paper_baseline()
        .params(params.clone())
        .layers(apps.len())
        .tsv_topology(TsvTopology::Few)
        .power_c4_fraction(0.25)
        .converters_per_core(converters_per_core);
    let pdn = scenario.voltage_stacked_pdn();

    let sampler = WorkloadSampler::paper_setup();
    let traces: Vec<Vec<f64>> = apps
        .iter()
        .enumerate()
        .map(|(layer, &app)| sampler.activity_trace(app, windows, layer as u64))
        .collect();

    let mut drops = Vec::with_capacity(windows);
    let mut overloaded_windows = 0;
    for w in 0..windows {
        let acts: Vec<f64> = traces.iter().map(|t| t[w]).collect();
        let loads = StackLoads::from_activities(&params, &acts);
        let sol = pdn.solve(&loads)?;
        if sol.has_overload() {
            overloaded_windows += 1;
        }
        drops.push(sol.max_ir_drop_frac);
    }
    Ok(TraceStudy {
        apps: apps.to_vec(),
        windows,
        drops,
        overloaded_windows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_app_trace_is_quieter_than_mixed() {
        let same = replay_trace(Fidelity::Quick, &[ParsecApp::Blackscholes; 4], 30, 8).unwrap();
        let mixed = replay_trace(
            Fidelity::Quick,
            &[
                ParsecApp::Swaptions,
                ParsecApp::Canneal,
                ParsecApp::Swaptions,
                ParsecApp::Canneal,
            ],
            30,
            8,
        )
        .unwrap();
        assert!(
            same.worst_drop() < mixed.worst_drop(),
            "same-app {} vs mixed {}",
            same.worst_drop(),
            mixed.worst_drop()
        );
    }

    #[test]
    fn worst_case_is_rare_not_typical() {
        // The static Fig 6 worst case should bound the trace; typical
        // windows sit well below it.
        let t = replay_trace(
            Fidelity::Quick,
            &[
                ParsecApp::X264,
                ParsecApp::Ferret,
                ParsecApp::X264,
                ParsecApp::Ferret,
            ],
            40,
            8,
        )
        .unwrap();
        assert!(t.mean_drop() < t.worst_drop());
        assert!(t.exceedance(0.9 * t.worst_drop()) < 0.5);
    }

    #[test]
    fn trace_statistics_are_consistent() {
        let t = replay_trace(Fidelity::Quick, &[ParsecApp::Vips; 2], 20, 4).unwrap();
        assert_eq!(t.drops.len(), 20);
        assert!(t.overloaded_windows <= 20);
        assert!(t.exceedance(0.0) > 0.99);
        assert!(t.exceedance(1.0) < 1e-9);
    }
}
