//! Extension study: exhaustive what-if **fault maps**.
//!
//! The wearout loop ([`crate::experiments::ext_wearout`]) follows one
//! degradation trajectory; this study asks the orthogonal question: *which
//! single element would hurt most if it failed right now?* It enumerates
//! every single-element fault — each power pad and each TSV bundle opened
//! in isolation (N-choose-1, exhaustive) — plus a deterministic sample of
//! element *pairs* (N-choose-2), and reports the worst IR drop of each
//! faulted network, sorted worst-first.
//!
//! Brute force, this is N (or N²) full ladder solves. The rank-k
//! Sherman–Morrison–Woodbury fault sketch
//! ([`vstack_pdn::FaultSketch`], driven through
//! `solve_faulted_sketched`) collapses each what-if to a dense rank-k
//! update against one cached baseline, so the whole map costs one exact
//! solve plus one lazy column solve per distinct fault element — the
//! per-query marginal cost is microseconds. Every entry records whether
//! it was sketch-answered, so the map doubles as an integration check of
//! the sketch's coverage.
//!
//! Fault sets that disconnect the network (or exceed the sketch budget)
//! take the exact path; a disconnection is reported as a terminal entry
//! (`disconnected`, drop = ∞ for ranking), not an error.

use vstack_pdn::{FaultSet, FaultedSolution, PdnError, SolveScratch, TsvTopology};
use vstack_sparse::SolveError;

use crate::experiments::Fidelity;
use crate::scenario::DesignScenario;

/// One fault-able network element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultElement {
    /// A supply-net power pad, by C4 ordinal.
    VddPad(usize),
    /// A return-net power pad, by C4 ordinal.
    GndPad(usize),
    /// An entire vertical TSV bundle at `(interface, core)` — every
    /// conductor of the bundle opened.
    TsvBundle {
        /// Layer interface index (0 = between layers 0 and 1).
        interface: usize,
        /// Core index within the floorplan.
        core: usize,
    },
}

impl std::fmt::Display for FaultElement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultElement::VddPad(ord) => write!(f, "vdd_pad[{ord}]"),
            FaultElement::GndPad(ord) => write!(f, "gnd_pad[{ord}]"),
            FaultElement::TsvBundle { interface, core } => {
                write!(f, "tsv[{interface},{core}]")
            }
        }
    }
}

/// One what-if query of the map.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultMapEntry {
    /// The opened elements (one for singles, two for pairs).
    pub elements: Vec<FaultElement>,
    /// Worst IR drop of the faulted network as a fraction of Vdd;
    /// `f64::INFINITY` when the fault disconnects the network.
    pub max_ir_drop_frac: f64,
    /// Whether the fault isolated part of the grid from every rail.
    pub disconnected: bool,
    /// Whether the answer came from the SMW sketch (vs the exact ladder).
    pub sketched: bool,
}

/// The ranked fault map of one topology.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultMap {
    /// `"regular"` or `"voltage-stacked"`.
    pub label: &'static str,
    /// Stacked layer count.
    pub n_layers: usize,
    /// Worst IR drop of the healthy network.
    pub baseline_drop_frac: f64,
    /// Every single-element fault, exhaustive, sorted worst-first
    /// (disconnections first, then by drop; ties by element order).
    pub singles: Vec<FaultMapEntry>,
    /// Deterministically sampled element pairs, sorted worst-first.
    pub pairs: Vec<FaultMapEntry>,
}

impl FaultMap {
    /// Share of entries (singles + pairs) answered by the SMW sketch.
    pub fn sketched_fraction(&self) -> f64 {
        let total = self.singles.len() + self.pairs.len();
        if total == 0 {
            return 0.0;
        }
        let hit = self
            .singles
            .iter()
            .chain(&self.pairs)
            .filter(|e| e.sketched)
            .count();
        hit as f64 / total as f64
    }

    /// The most damaging single-element fault (the map is sorted).
    pub fn worst_single(&self) -> Option<&FaultMapEntry> {
        self.singles.first()
    }
}

/// Configuration of the fault-map sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultMapConfig {
    /// Grid fidelity of the underlying solves.
    pub fidelity: Fidelity,
    /// Stacked layer count.
    pub n_layers: usize,
    /// Number of element pairs to sample for the N-choose-2 map.
    pub pair_samples: usize,
    /// Seed of the deterministic LCG drawing the pair sample.
    pub seed: u64,
}

impl Default for FaultMapConfig {
    fn default() -> Self {
        FaultMapConfig {
            fidelity: Fidelity::Paper,
            n_layers: 8,
            pair_samples: 128,
            seed: 0x5eed_fa17,
        }
    }
}

impl FaultMapConfig {
    /// CI-speed variant: coarse grid, shallow stack, thin pair sample.
    pub fn quick() -> Self {
        FaultMapConfig {
            fidelity: Fidelity::Quick,
            n_layers: 2,
            pair_samples: 24,
            ..FaultMapConfig::default()
        }
    }
}

/// Minimal multiplicative LCG (Knuth MMIX constants) — deterministic pair
/// sampling with no RNG dependency.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 16
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Every fault-able element of a topology, in deterministic order.
fn candidates(
    vdd_pads: usize,
    gnd_pads: usize,
    interfaces: usize,
    cores: usize,
) -> Vec<FaultElement> {
    let mut c = Vec::with_capacity(vdd_pads + gnd_pads + interfaces * cores);
    c.extend((0..vdd_pads).map(FaultElement::VddPad));
    c.extend((0..gnd_pads).map(FaultElement::GndPad));
    for interface in 0..interfaces {
        for core in 0..cores {
            c.push(FaultElement::TsvBundle { interface, core });
        }
    }
    c
}

/// The fault set opening the given elements (`tsvs_per_bundle` conductors
/// per TSV-bundle element — the whole bundle).
fn fault_set_for(elements: &[FaultElement], tsvs_per_bundle: usize) -> FaultSet {
    let mut f = FaultSet::new();
    for &e in elements {
        match e {
            FaultElement::VddPad(ord) => f.fail_vdd_pad(ord),
            FaultElement::GndPad(ord) => f.fail_gnd_pad(ord),
            FaultElement::TsvBundle { interface, core } => {
                f.fail_tsvs(interface, core, tsvs_per_bundle);
            }
        }
    }
    f
}

/// Worst-first ordering: disconnections ahead of finite drops, larger
/// drops first, element order as the deterministic tiebreak.
fn rank(entries: &mut [FaultMapEntry]) {
    entries.sort_by(|a, b| {
        b.disconnected
            .cmp(&a.disconnected)
            .then(b.max_ir_drop_frac.total_cmp(&a.max_ir_drop_frac))
            .then(a.elements.cmp(&b.elements))
    });
}

fn sweep(
    label: &'static str,
    n_layers: usize,
    config: &FaultMapConfig,
    cands: &[FaultElement],
    tsvs_per_bundle: usize,
    solve: &mut dyn FnMut(&FaultSet, &mut SolveScratch) -> Result<FaultedSolution, PdnError>,
) -> Result<FaultMap, SolveError> {
    let mut scratch = SolveScratch::new();
    // Warm the sketch on the healthy baseline; a failure here is a real
    // error (the pristine network must solve).
    let baseline = match solve(&FaultSet::new(), &mut scratch) {
        Ok(s) => s,
        Err(PdnError::Solve(e)) => return Err(e),
        Err(PdnError::Disconnected { .. }) => {
            unreachable!("pristine network cannot be disconnected")
        }
    };

    let mut query = |elements: Vec<FaultElement>,
                     scratch: &mut SolveScratch|
     -> Result<FaultMapEntry, SolveError> {
        let faults = fault_set_for(&elements, tsvs_per_bundle);
        match solve(&faults, scratch) {
            Ok(s) => Ok(FaultMapEntry {
                elements,
                max_ir_drop_frac: s.solution.max_ir_drop_frac,
                disconnected: false,
                sketched: s.report.operator == "smw",
            }),
            Err(PdnError::Disconnected { .. }) => Ok(FaultMapEntry {
                elements,
                max_ir_drop_frac: f64::INFINITY,
                disconnected: true,
                sketched: false,
            }),
            Err(PdnError::Solve(e)) => Err(e),
        }
    };

    let mut singles = Vec::with_capacity(cands.len());
    for &e in cands {
        singles.push(query(vec![e], &mut scratch)?);
    }
    rank(&mut singles);

    // Deterministic pair sample, duplicates skipped (so the entry count
    // can fall short of the request on tiny candidate sets).
    let mut lcg = Lcg(config.seed ^ n_layers as u64);
    let mut seen = std::collections::BTreeSet::new();
    let mut pairs = Vec::with_capacity(config.pair_samples);
    let max_pairs = cands.len() * (cands.len() - 1) / 2;
    let mut draws = 0usize;
    while pairs.len() < config.pair_samples.min(max_pairs) && draws < config.pair_samples * 64 {
        draws += 1;
        let a = lcg.below(cands.len());
        let b = lcg.below(cands.len());
        if a == b {
            continue;
        }
        let key = (a.min(b), a.max(b));
        if !seen.insert(key) {
            continue;
        }
        pairs.push(query(vec![cands[key.0], cands[key.1]], &mut scratch)?);
    }
    rank(&mut pairs);

    Ok(FaultMap {
        label,
        n_layers,
        baseline_drop_frac: baseline.solution.max_ir_drop_frac,
        singles,
        pairs,
    })
}

fn scenario(config: &FaultMapConfig) -> DesignScenario {
    let mut p = DesignScenario::paper_baseline().pdn_params().clone();
    p.grid_refinement = config.fidelity.grid_refinement();
    DesignScenario::paper_baseline()
        .params(p)
        .layers(config.n_layers)
        .tsv_topology(TsvTopology::Few)
        .power_c4_fraction(0.25)
}

/// The exhaustive single-fault map (plus sampled pairs) of the regular
/// topology at full activity.
///
/// # Errors
///
/// Propagates [`SolveError`] only if a *solvable* network exhausts the
/// escalation ladder; disconnection is a ranked entry, not an error.
pub fn regular_fault_map(config: &FaultMapConfig) -> Result<FaultMap, SolveError> {
    let s = scenario(config);
    let pdn = s.regular_pdn();
    let loads = s.peak_loads();
    let cands = candidates(
        pdn.c4().vdd_count(),
        pdn.c4().gnd_count(),
        config.n_layers.saturating_sub(1),
        s.pdn_params().floorplan().core_count(),
    );
    sweep(
        "regular",
        config.n_layers,
        config,
        &cands,
        TsvTopology::Few.vdd_tsvs_per_core(),
        &mut |f, scratch| pdn.solve_faulted_sketched(&loads, f, scratch),
    )
}

/// The exhaustive single-fault map (plus sampled pairs) of the
/// voltage-stacked topology under the same full-activity workload.
///
/// # Errors
///
/// As for [`regular_fault_map`].
pub fn vs_fault_map(config: &FaultMapConfig) -> Result<FaultMap, SolveError> {
    let s = scenario(config);
    let pdn = s.voltage_stacked_pdn();
    let loads = s.peak_loads();
    let cands = candidates(
        pdn.c4().vdd_count(),
        pdn.c4().gnd_count(),
        config.n_layers.saturating_sub(1),
        s.pdn_params().floorplan().core_count(),
    );
    sweep(
        "voltage-stacked",
        config.n_layers,
        config,
        &cands,
        TsvTopology::Few.tsvs_per_core(),
        &mut |f, scratch| pdn.solve_faulted_sketched(&loads, f, scratch),
    )
}

/// Both topologies' maps, regular first.
///
/// # Errors
///
/// As for [`regular_fault_map`].
pub fn fault_map_comparison(config: &FaultMapConfig) -> Result<Vec<FaultMap>, SolveError> {
    Ok(vec![regular_fault_map(config)?, vs_fault_map(config)?])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_map_is_exhaustive_deterministic_and_ranked() {
        let cfg = FaultMapConfig::quick();
        let a = regular_fault_map(&cfg).unwrap();
        let b = regular_fault_map(&cfg).unwrap();
        assert_eq!(a, b, "the map must be bit-for-bit deterministic");

        let s = scenario(&cfg);
        let pdn = s.regular_pdn();
        let expected = pdn.c4().vdd_count()
            + pdn.c4().gnd_count()
            + (cfg.n_layers - 1) * s.pdn_params().floorplan().core_count();
        assert_eq!(a.singles.len(), expected, "N-choose-1 must be exhaustive");

        for w in a.singles.windows(2) {
            assert!(
                w[0].disconnected
                    || w[0].max_ir_drop_frac >= w[1].max_ir_drop_frac
                    || w[1].disconnected == w[0].disconnected,
                "singles must be ranked worst-first"
            );
        }
        // Opening an element can only hurt.
        let worst = a.worst_single().unwrap();
        assert!(worst.disconnected || worst.max_ir_drop_frac >= a.baseline_drop_frac - 1e-12);
    }

    #[test]
    fn warm_queries_are_mostly_sketch_answered() {
        let cfg = FaultMapConfig::quick();
        for map in fault_map_comparison(&cfg).unwrap() {
            assert!(
                map.sketched_fraction() > 0.5,
                "{}: sketched fraction {} — the sketch is not engaging",
                map.label,
                map.sketched_fraction()
            );
        }
    }

    #[test]
    fn pair_sample_is_deduped_and_bounded() {
        let cfg = FaultMapConfig::quick();
        let map = vs_fault_map(&cfg).unwrap();
        assert!(map.pairs.len() <= cfg.pair_samples);
        assert!(!map.pairs.is_empty());
        let mut keys: Vec<_> = map
            .pairs
            .iter()
            .map(|e| {
                let mut k = e.elements.clone();
                k.sort();
                k
            })
            .collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), map.pairs.len(), "pair sample must be unique");
        for e in &map.pairs {
            assert_eq!(e.elements.len(), 2);
        }
    }
}
