//! Fig 5 — EM-induced lifetime of TSV and C4 arrays vs layer count.
//!
//! All lifetimes are normalized to the 2-layer V-S PDN, exactly as in the
//! paper. The workload is full activity on every layer (EM is driven by
//! sustained average current).
//!
//! Both studies evaluate V-S at the figures' 25% power-pad allocation.
//! Per-TSV currents include the local crowding model (see
//! `PdnParams::tsv_hot_conductors_per_core`), which is what makes the regular
//! series nearly insensitive to the TSV topology — the paper's "adding
//! more TSVs … only marginally increases MTTF" observation.

use vstack_em::black::BlackModel;
use vstack_pdn::TsvTopology;
use vstack_sparse::{pool, SolveError};

use crate::em_study::{c4_array_lifetime, tsv_array_lifetime};
use crate::experiments::Fidelity;
use crate::scenario::DesignScenario;

/// Layer counts swept by both sub-figures.
pub const LAYER_COUNTS: [usize; 4] = [2, 4, 6, 8];

/// C4 power fractions swept by Fig 5b's regular-PDN series.
pub const C4_FRACTIONS: [f64; 4] = [0.25, 0.50, 0.75, 1.00];

/// One series of normalized lifetimes (one line of Fig 5a or 5b).
#[derive(Debug, Clone, PartialEq)]
pub struct LifetimeSeries {
    /// Legend label matching the paper.
    pub label: String,
    /// `(layer_count, normalized_lifetime)` points.
    pub points: Vec<(usize, f64)>,
}

impl LifetimeSeries {
    /// Lifetime at a given layer count, if present.
    pub fn at(&self, layers: usize) -> Option<f64> {
        self.points
            .iter()
            .find(|(l, _)| *l == layers)
            .map(|&(_, v)| v)
    }
}

/// Complete data for one sub-figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Data {
    /// All series; the V-S series is last.
    pub series: Vec<LifetimeSeries>,
}

impl Fig5Data {
    /// Finds a series by its label prefix.
    pub fn series_named(&self, prefix: &str) -> Option<&LifetimeSeries> {
        self.series.iter().find(|s| s.label.starts_with(prefix))
    }
}

/// Assembles normalized lifetime series from a flat task list.
///
/// `tasks` holds one `(series_label, layer_count, solve-and-rate)` unit
/// per point, grouped by series in order. The solves are independent, so
/// they fan out across the active [`vstack_sparse::pool`]; the raw
/// lifetimes come back in task order and are normalized against
/// `reference_index` (a V-S anchor point that is itself one of the
/// tasks, so the anchor is solved exactly once). Bit-identical to the
/// serial evaluation at any thread count.
fn lifetime_series<F>(
    labels: Vec<String>,
    tasks: Vec<(usize, usize)>,
    reference_index: usize,
    rate: F,
) -> Result<Fig5Data, SolveError>
where
    F: Fn(usize, usize) -> Result<f64, SolveError> + Sync,
{
    let raw = pool::par_map(tasks.clone(), |(series, n)| rate(series, n));
    let raw: Vec<f64> = raw.into_iter().collect::<Result<_, _>>()?;
    let reference = raw[reference_index];
    let mut series: Vec<LifetimeSeries> = labels
        .into_iter()
        .map(|label| LifetimeSeries {
            label,
            points: Vec::new(),
        })
        .collect();
    for (&(s, n), &life) in tasks.iter().zip(&raw) {
        series[s].points.push((n, life / reference));
    }
    Ok(Fig5Data { series })
}

/// Fig 5a: power-TSV array EM lifetime. Series: regular PDN with Dense,
/// Sparse and Few TSVs, plus the V-S PDN with Few TSVs.
///
/// # Errors
///
/// Propagates [`SolveError`] from the PDN solves.
pub fn tsv_lifetimes(fidelity: Fidelity) -> Result<Fig5Data, SolveError> {
    let model = BlackModel::paper_tsv();
    let base = |s: DesignScenario| {
        let mut p = s.pdn_params().clone();
        p.grid_refinement = fidelity.grid_refinement();
        s.params(p)
    };

    // Reference: 2-layer V-S with Few TSVs and the §5.1 pad allocation.
    let vs_scenario = |layers: usize| {
        base(DesignScenario::paper_baseline())
            .layers(layers)
            .tsv_topology(TsvTopology::Few)
            .power_c4_fraction(0.25)
    };

    let topos = [TsvTopology::Dense, TsvTopology::Sparse, TsvTopology::Few];
    let labels: Vec<String> = topos
        .iter()
        .map(|t| format!("Reg. PDN, {}", t.name()))
        .chain(["V-S PDN, Few TSV".to_owned()])
        .collect();
    let tasks: Vec<(usize, usize)> = (0..labels.len())
        .flat_map(|s| LAYER_COUNTS.iter().map(move |&n| (s, n)))
        .collect();
    // The V-S series is last; its first point is the 2-layer anchor.
    let reference_index = topos.len() * LAYER_COUNTS.len();
    lifetime_series(labels, tasks, reference_index, |s, n| {
        let sol = if s < topos.len() {
            base(DesignScenario::paper_baseline())
                .layers(n)
                .tsv_topology(topos[s])
                .power_c4_fraction(0.25)
                .solve_regular_peak()?
        } else {
            vs_scenario(n).solve_voltage_stacked(0.0)?
        };
        Ok(tsv_array_lifetime(&sol, &model))
    })
}

/// Fig 5b: C4 pad array EM lifetime. Series: regular PDN at 25/50/75/100%
/// power-pad allocation plus the V-S PDN at 25%.
///
/// # Errors
///
/// Propagates [`SolveError`] from the PDN solves.
pub fn c4_lifetimes(fidelity: Fidelity) -> Result<Fig5Data, SolveError> {
    let model = BlackModel::paper_c4();
    let base = |s: DesignScenario| {
        let mut p = s.pdn_params().clone();
        p.grid_refinement = fidelity.grid_refinement();
        s.params(p)
    };

    let vs_scenario = |layers: usize| {
        base(DesignScenario::paper_baseline())
            .layers(layers)
            .tsv_topology(TsvTopology::Few)
            .power_c4_fraction(0.25)
    };

    let labels: Vec<String> = C4_FRACTIONS
        .iter()
        .map(|frac| format!("Reg. PDN ({:.0}% Power C4)", frac * 100.0))
        .chain(["V-S PDN (25% Power C4)".to_owned()])
        .collect();
    let tasks: Vec<(usize, usize)> = (0..labels.len())
        .flat_map(|s| LAYER_COUNTS.iter().map(move |&n| (s, n)))
        .collect();
    let reference_index = C4_FRACTIONS.len() * LAYER_COUNTS.len();
    lifetime_series(labels, tasks, reference_index, |s, n| {
        let sol = if s < C4_FRACTIONS.len() {
            // C4 EM robustness is insensitive to the TSV topology (paper
            // §5.1 uses a fixed topology for this study).
            base(DesignScenario::paper_baseline())
                .layers(n)
                .tsv_topology(TsvTopology::Sparse)
                .power_c4_fraction(C4_FRACTIONS[s])
                .solve_regular_peak()?
        } else {
            vs_scenario(n).solve_voltage_stacked(0.0)?
        };
        Ok(c4_array_lifetime(&sol, &model))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5a_shapes_match_paper() {
        let data = tsv_lifetimes(Fidelity::Quick).unwrap();
        let vs = data.series_named("V-S").unwrap();
        let few = data.series_named("Reg. PDN, Few").unwrap();

        // Normalization anchor.
        assert!((vs.at(2).unwrap() - 1.0).abs() < 1e-6);
        // Regular PDN degrades steeply with stacking (paper: up to 84%).
        let drop = 1.0 - few.at(8).unwrap() / few.at(2).unwrap();
        assert!(drop > 0.60, "regular TSV MTTF should collapse, got {drop}");
        // V-S is much less sensitive to layer count.
        let vs_drop = 1.0 - vs.at(8).unwrap() / vs.at(2).unwrap();
        assert!(vs_drop < 0.5, "V-S TSV MTTF ≈flat, got drop {vs_drop}");
        // Regular beats V-S at 2 layers (through-via current dominates)…
        assert!(few.at(2).unwrap() > 1.0);
        // …but V-S wins by ≥3× at 8 layers (paper: "more than 3x").
        assert!(
            vs.at(8).unwrap() > 3.0 * few.at(8).unwrap(),
            "V-S {} vs Few {}",
            vs.at(8).unwrap(),
            few.at(8).unwrap()
        );
    }

    #[test]
    fn fig5b_shapes_match_paper() {
        let data = c4_lifetimes(Fidelity::Quick).unwrap();
        let vs = data.series_named("V-S").unwrap();
        let reg25 = data.series_named("Reg. PDN (25%").unwrap();
        let reg100 = data.series_named("Reg. PDN (100%").unwrap();

        assert!((vs.at(2).unwrap() - 1.0).abs() < 1e-6);
        // V-S C4 lifetime independent of layer count.
        assert!((vs.at(8).unwrap() - 1.0).abs() < 0.1);
        // Regular degrades with layers; more pads help but cannot catch up.
        assert!(reg25.at(8).unwrap() < reg25.at(2).unwrap());
        assert!(reg100.at(8).unwrap() > reg25.at(8).unwrap());
        assert!(
            vs.at(8).unwrap() > reg100.at(8).unwrap(),
            "even 100% power pads can't match V-S (paper §5.1)"
        );
        // The headline: ≈5× gap at matched allocation and 8 layers.
        let gap = vs.at(8).unwrap() / reg25.at(8).unwrap();
        assert!(gap > 4.0, "paper reports up to 5x, got {gap}");
    }
}
