//! Extension study: load-step (di/dt) transients.
//!
//! The paper's noise study is steady-state; this experiment asks what
//! happens in the nanoseconds *after* the workload imbalance appears —
//! half the layers hit a barrier and idle while the others keep running.
//! The V-S PDN's intermediate rails must slew to their new operating
//! point through the converters, with the on-chip decap carrying the
//! charge in the meantime.
//!
//! Reported per design point: the initial (balanced) drop, the transient
//! peak, the settled post-step drop, the overshoot beyond the settled
//! value, and the settling time.

use vstack_pdn::transient::PdnTransientConfig;
use vstack_pdn::TsvTopology;
use vstack_sparse::SolveError;

use crate::experiments::Fidelity;
use crate::scenario::DesignScenario;

/// Result of one step-transient design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientPoint {
    /// Converters per core (0 for the regular-PDN reference).
    pub converters_per_core: usize,
    /// Decap per core per layer, farads.
    pub decap_per_core_f: f64,
    /// Worst drop before the step (balanced workload).
    pub initial_drop: f64,
    /// Worst transient excursion.
    pub peak_drop: f64,
    /// Settled post-step drop.
    pub final_drop: f64,
    /// `peak − final`.
    pub overshoot: f64,
    /// Settling time into a ±0.1% Vdd band, seconds (None = not settled
    /// in the window).
    pub settling_time_s: Option<f64>,
}

/// Runs the V-S imbalance-step study: balanced → `imbalance` at `t = 0`.
///
/// # Errors
///
/// Propagates [`SolveError`].
pub fn vs_step_study(
    fidelity: Fidelity,
    n_layers: usize,
    imbalance: f64,
    converter_counts: &[usize],
    decaps_f: &[f64],
) -> Result<Vec<TransientPoint>, SolveError> {
    let base = || {
        let mut p = DesignScenario::paper_baseline().pdn_params().clone();
        p.grid_refinement = fidelity.grid_refinement();
        DesignScenario::paper_baseline()
            .params(p)
            .layers(n_layers)
            .tsv_topology(TsvTopology::Few)
            .power_c4_fraction(0.25)
    };
    let mut out = Vec::new();
    for &k in converter_counts {
        let scenario = base().converters_per_core(k);
        let pdn = scenario.voltage_stacked_pdn();
        let before = scenario.interleaved_loads(0.0);
        let after = scenario.interleaved_loads(imbalance);
        for &decap in decaps_f {
            let cfg = PdnTransientConfig {
                decap_per_core_f: decap,
                ..PdnTransientConfig::default()
            };
            let resp = pdn.solve_transient_step(&before, &after, &cfg)?;
            out.push(TransientPoint {
                converters_per_core: k,
                decap_per_core_f: decap,
                initial_drop: resp.initial_drop,
                peak_drop: resp.peak_drop(),
                final_drop: resp.final_drop(),
                overshoot: resp.overshoot(),
                settling_time_s: resp.settling_time(0.001),
            });
        }
    }
    Ok(out)
}

/// Regular-PDN reference: an all-layer activity step (30% → 100%).
///
/// # Errors
///
/// Propagates [`SolveError`].
pub fn regular_step_reference(
    fidelity: Fidelity,
    n_layers: usize,
    decap_f: f64,
) -> Result<TransientPoint, SolveError> {
    let mut p = DesignScenario::paper_baseline().pdn_params().clone();
    p.grid_refinement = fidelity.grid_refinement();
    let scenario = DesignScenario::paper_baseline()
        .params(p.clone())
        .layers(n_layers)
        .tsv_topology(TsvTopology::Dense)
        .power_c4_fraction(0.5);
    let pdn = scenario.regular_pdn();
    let before = vstack_pdn::StackLoads::from_activities(&p, &vec![0.3; n_layers]);
    let after = vstack_pdn::StackLoads::from_activities(&p, &vec![1.0; n_layers]);
    let cfg = PdnTransientConfig {
        decap_per_core_f: decap_f,
        ..PdnTransientConfig::default()
    };
    let resp = pdn.solve_transient_step(&before, &after, &cfg)?;
    Ok(TransientPoint {
        converters_per_core: 0,
        decap_per_core_f: decap_f,
        initial_drop: resp.initial_drop,
        peak_drop: resp.peak_drop(),
        final_drop: resp.final_drop(),
        overshoot: resp.overshoot(),
        settling_time_s: resp.settling_time(0.001),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_grows_with_imbalance_target() {
        let small = vs_step_study(Fidelity::Quick, 4, 0.3, &[8], &[40e-9]).unwrap();
        let large = vs_step_study(Fidelity::Quick, 4, 0.8, &[8], &[40e-9]).unwrap();
        assert!(large[0].final_drop > small[0].final_drop);
        assert!(large[0].peak_drop >= large[0].final_drop - 1e-9);
    }

    #[test]
    fn more_converters_settle_to_lower_drop() {
        let pts = vs_step_study(Fidelity::Quick, 4, 0.65, &[4, 8], &[40e-9]).unwrap();
        let four = pts.iter().find(|p| p.converters_per_core == 4).unwrap();
        let eight = pts.iter().find(|p| p.converters_per_core == 8).unwrap();
        assert!(eight.final_drop < four.final_drop);
    }

    #[test]
    fn regular_reference_settles() {
        let r = regular_step_reference(Fidelity::Quick, 4, 40e-9).unwrap();
        assert!(r.final_drop > r.initial_drop);
        assert!(r.settling_time_s.is_some());
    }
}
