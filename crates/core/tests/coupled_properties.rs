//! Property-based tests of the thermal–EM–IR coupled driver: the fixed
//! point must not depend on the damping path taken to it, coupling must
//! respond monotonically to the thermal boundary, and the whole
//! iteration must reuse one symbolic factorization.
//!
//! The scratch-reuse test reads the process-global `vstack-obs` metrics
//! registry, so it snapshots counters before/after rather than assuming
//! zero — sibling tests in this binary also solve.

use proptest::prelude::*;
use vstack::coupled::{solve_coupled, CoupledConfig, CoupledLoad};
use vstack::pdn::{SolveScratch, TsvTopology};
use vstack::scenario::DesignScenario;

fn quick_scenario(n_layers: usize) -> DesignScenario {
    let mut p = DesignScenario::paper_baseline().pdn_params().clone();
    p.grid_refinement = 1;
    DesignScenario::paper_baseline()
        .params(p)
        .layers(n_layers)
        .tsv_topology(TsvTopology::Few)
        .power_c4_fraction(0.25)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The fixed point is a property of the physics, not of the damping
    /// factor: any stable damping converges to the same layer
    /// temperatures (within a few multiples of the tolerance).
    #[test]
    fn fixed_point_is_damping_invariant(damping in 0.3..0.9f64, layers in 2usize..5) {
        let s = quick_scenario(layers);
        let reference = CoupledConfig::paper_air_cooled();
        let mut varied = reference;
        varied.damping = damping;
        let mut scratch = SolveScratch::new();
        let a = solve_coupled(&s, CoupledLoad::RegularPeak, &reference, None, &mut scratch)
            .expect("reference solve");
        let b = solve_coupled(&s, CoupledLoad::RegularPeak, &varied, None, &mut scratch)
            .expect("varied solve");
        prop_assert!(a.report.converged && b.report.converged);
        for (ta, tb) in a.report.layer_temps_c.iter().zip(&b.report.layer_temps_c) {
            prop_assert!(
                (ta - tb).abs() < 4.0 * reference.tolerance_c,
                "layer temps diverged across damping: {ta} vs {tb}"
            );
        }
    }

    /// Hotter ambient can only shorten the coupled C4 lifetime, and the
    /// stack itself must sit above whichever ambient it is given.
    #[test]
    fn hotter_ambient_shortens_coupled_lifetime(delta_c in 5.0..30.0f64) {
        let s = quick_scenario(4);
        let cool = CoupledConfig::paper_air_cooled();
        let warm = cool.ambient_c(45.0 + delta_c);
        let mut scratch = SolveScratch::new();
        let a = solve_coupled(&s, CoupledLoad::RegularPeak, &cool, None, &mut scratch)
            .expect("cool solve");
        let b = solve_coupled(&s, CoupledLoad::RegularPeak, &warm, None, &mut scratch)
            .expect("warm solve");
        prop_assert!(a.report.converged && b.report.converged);
        prop_assert!(b.report.peak_temperature_c > a.report.peak_temperature_c + delta_c * 0.5);
        prop_assert!(b.report.em.c4_hours < a.report.em.c4_hours);
        prop_assert!(a.report.layer_temps_c.iter().all(|t| *t > 45.0));
    }
}

#[test]
fn coupling_iterations_reuse_one_symbolic_factorization() {
    let s = quick_scenario(4);
    let config = CoupledConfig::paper_air_cooled();
    let mut scratch = SolveScratch::new();
    let m = vstack_obs::metrics::global();
    let builds_before = m.pdn_pattern_builds.get();
    let out = solve_coupled(&s, CoupledLoad::RegularPeak, &config, None, &mut scratch)
        .expect("coupled solve");
    assert!(out.report.converged);
    assert!(out.report.iterations >= 2);
    let built = m.pdn_pattern_builds.get() - builds_before;
    // One symbolic pattern build for the first assembly; every later
    // iteration re-stamps values into the same sparsity pattern.
    assert_eq!(
        built, 1,
        "coupled run rebuilt the pattern {built} times over {} iterations",
        out.report.iterations
    );
}
