//! The analytic ("compact") SC converter model of paper §3.1 / Fig 2.
//!
//! The model reduces the switched converter to an ideal transformer with
//! output `V_ideal = (V_top + V_bottom)/2` in series with an output
//! impedance `R_SERIES`, plus parasitic losses accounted separately:
//!
//! * **Slow-switching limit** — fly-capacitor charge sharing:
//!   `R_SSL = (Σ|a_c,i|)² / (k · C_tot · f_SW)` with `k` charge transfers
//!   per period (2 for the push-pull topology, which moves charge in both
//!   phases). Paper Eq. (1).
//! * **Fast-switching limit** — switch conduction:
//!   `R_FSL = (Σ|a_r,i|)² / (G_tot · D_cyc)`. Paper Eq. (2).
//! * `R_SERIES = √(R_SSL² + R_FSL²)` — 0.6 Ω for the implemented
//!   28 nm converter (8 nF fly caps, 50 MHz, 4-way interleaving).
//! * **Parasitic losses** `R_PAR`-equivalent: bottom-plate capacitance,
//!   gate drive and controller overhead, modelled as explicit power terms
//!   so open-loop converters pay them even at zero load.

use crate::control::ControlPolicy;

/// Charge-multiplier description of an SC topology (Seeman methodology).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScTopology {
    /// `Σ|a_c,i|` — capacitor charge-multiplier magnitudes.
    pub ac_sum: f64,
    /// `Σ|a_r,i|` — switch charge-multiplier magnitudes.
    pub ar_sum: f64,
    /// Charge transfers per switching period (2 for push-pull two-phase).
    pub transfers_per_cycle: f64,
}

impl ScTopology {
    /// The 2:1 push-pull (two fly capacitors, eight switches) topology of
    /// the paper's Fig 1.
    pub fn push_pull_2to1() -> Self {
        ScTopology {
            ac_sum: 0.5,
            ar_sum: 1.0,
            transfers_per_cycle: 2.0,
        }
    }
}

/// Parasitic-loss parameters (the `R_PAR` box of the paper's Fig 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Parasitics {
    /// Bottom-plate capacitance as a fraction of the fly capacitance.
    /// Each cycle dissipates `ratio · C_tot · V_swing²`.
    pub bottom_plate_ratio: f64,
    /// Gate-drive energy per switching cycle, in joules.
    pub gate_energy_j: f64,
    /// Static controller/clocking overhead, in watts.
    pub controller_w: f64,
}

impl Default for Parasitics {
    fn default() -> Self {
        // Calibrated to the paper's Fig 3 efficiency curves: ≈10 mW total
        // switching overhead at 50 MHz with a 1 V output swing.
        Parasitics {
            bottom_plate_ratio: 0.02,
            gate_energy_j: 4.0e-11,
            controller_w: 5.0e-4,
        }
    }
}

/// Compact model of one 2:1 push-pull SC converter.
///
/// Construct with [`ScConverter::paper_28nm`] for the paper's implemented
/// converter, or fill the fields for design-space exploration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScConverter {
    /// Topology charge multipliers.
    pub topology: ScTopology,
    /// Total fly capacitance in farads (8 nF for the paper's converter).
    pub c_tot: f64,
    /// Total switch conductance in siemens.
    pub g_tot: f64,
    /// Nominal (open-loop) switching frequency in hertz.
    pub f_nom: f64,
    /// Clock duty cycle (0.5 assumed by the paper).
    pub duty: f64,
    /// Interleaving ways (affects ripple, not impedance; kept for area and
    /// detailed-model construction).
    pub interleave: u32,
    /// Rated (maximum) load current in amperes (0.1 A for the paper's
    /// converter).
    pub i_rated: f64,
    /// Parasitic loss parameters.
    pub parasitics: Parasitics,
    /// Frequency control policy.
    pub control: ControlPolicy,
}

impl ScConverter {
    /// The converter implemented in the paper: 28 nm, 8 nF integrated fly
    /// capacitance, 50 MHz optimum switching frequency, 4-way interleaving,
    /// 100 mA rated load, `R_SERIES = 0.6 Ω`, open-loop control.
    pub fn paper_28nm() -> Self {
        ScConverter {
            topology: ScTopology::push_pull_2to1(),
            c_tot: 8e-9,
            // Chosen so that √(R_SSL² + R_FSL²) = 0.6 Ω at 50 MHz:
            // R_SSL = 0.3125 Ω ⇒ R_FSL = 0.512 Ω ⇒ G_tot = 3.906 S.
            g_tot: 3.90625,
            f_nom: 50e6,
            duty: 0.5,
            interleave: 4,
            i_rated: 0.1,
            parasitics: Parasitics::default(),
            control: ControlPolicy::OpenLoop,
        }
    }

    /// Same converter with closed-loop frequency modulation.
    pub fn paper_28nm_closed_loop() -> Self {
        ScConverter {
            control: ControlPolicy::closed_loop(),
            ..ScConverter::paper_28nm()
        }
    }

    /// Slow-switching-limit output impedance at switching frequency `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is not finite and positive.
    pub fn r_ssl(&self, f: f64) -> f64 {
        assert!(f.is_finite() && f > 0.0, "frequency must be positive");
        let ac = self.topology.ac_sum;
        (ac * ac) / (self.topology.transfers_per_cycle * self.c_tot * f)
    }

    /// Fast-switching-limit output impedance (frequency independent).
    pub fn r_fsl(&self) -> f64 {
        let ar = self.topology.ar_sum;
        (ar * ar) / (self.g_tot * self.duty)
    }

    /// Total series output impedance `√(R_SSL² + R_FSL²)` at frequency `f`.
    pub fn r_series(&self, f: f64) -> f64 {
        self.r_ssl(f).hypot(self.r_fsl())
    }

    /// `R_SERIES` at the nominal switching frequency (0.6 Ω for
    /// [`ScConverter::paper_28nm`]).
    pub fn r_series_at_nominal(&self) -> f64 {
        self.r_series(self.f_nom)
    }

    /// Effective series resistance at a given load current, honouring the
    /// control policy (closed-loop raises `R_SSL` at light load).
    pub fn r_series_at(&self, i_load: f64) -> f64 {
        let f = self.control.frequency(self.f_nom, i_load, self.i_rated);
        self.r_series(f)
    }

    /// Whether `i_load` exceeds the converter's rating. The paper's Fig 6
    /// skips design points that overload any converter.
    pub fn is_overloaded(&self, i_load: f64) -> bool {
        i_load.abs() > self.i_rated
    }

    /// Parasitic (bottom-plate + gate-drive + controller) power at a given
    /// switching frequency and per-stage voltage swing — the loss a
    /// converter burns even at zero load.
    ///
    /// # Panics
    ///
    /// Panics if inputs are not finite and positive.
    pub fn parasitic_power(&self, f_sw: f64, v_swing: f64) -> f64 {
        assert!(f_sw.is_finite() && f_sw > 0.0, "frequency must be positive");
        assert!(
            v_swing.is_finite() && v_swing > 0.0,
            "voltage swing must be positive"
        );
        self.parasitics.bottom_plate_ratio * self.c_tot * v_swing * v_swing * f_sw
            + self.parasitics.gate_energy_j * f_sw
            + self.parasitics.controller_w
    }

    /// Evaluates the converter between rails `v_top` and `v_bottom`,
    /// delivering `i_out` (positive = sourcing into the output node,
    /// negative = sinking from it — the push-pull capability).
    ///
    /// # Panics
    ///
    /// Panics if `v_top <= v_bottom` or any input is not finite.
    pub fn operate(&self, v_top: f64, v_bottom: f64, i_out: f64) -> ScOperatingPoint {
        assert!(
            v_top.is_finite() && v_bottom.is_finite() && i_out.is_finite(),
            "operate() inputs must be finite"
        );
        assert!(
            v_top > v_bottom,
            "converter needs positive headroom (v_top {v_top} <= v_bottom {v_bottom})"
        );
        let f_sw = self.control.frequency(self.f_nom, i_out, self.i_rated);
        let r_series = self.r_series(f_sw);
        let v_ideal = 0.5 * (v_top + v_bottom);
        let v_out = v_ideal - i_out * r_series;
        let v_drop = (v_ideal - v_out).abs();
        let p_conduction = i_out * i_out * r_series;
        let v_swing = v_ideal - v_bottom;
        let p_parasitic =
            self.parasitics.bottom_plate_ratio * self.c_tot * v_swing * v_swing * f_sw
                + self.parasitics.gate_energy_j * f_sw
                + self.parasitics.controller_w;
        let p_out = (v_out - v_bottom) * i_out.abs();
        let efficiency = if p_out > 0.0 {
            p_out / (p_out + p_conduction + p_parasitic)
        } else {
            0.0
        };
        ScOperatingPoint {
            v_out,
            v_drop,
            f_sw,
            r_series,
            p_out,
            p_conduction,
            p_parasitic,
            efficiency,
        }
    }
}

/// Solved state of one converter at a load point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScOperatingPoint {
    /// Actual output voltage (after the `R_SERIES` drop).
    pub v_out: f64,
    /// Magnitude of the resistive output-voltage drop `|i·R_SERIES|`.
    pub v_drop: f64,
    /// Switching frequency chosen by the control policy.
    pub f_sw: f64,
    /// Series output impedance at that frequency.
    pub r_series: f64,
    /// Power delivered to the output, referenced to the bottom rail.
    pub p_out: f64,
    /// Conduction loss `i²·R_SERIES`.
    pub p_conduction: f64,
    /// Parasitic switching + controller loss.
    pub p_parasitic: f64,
    /// `P_out / (P_out + losses)`; 0 when the converter delivers no power.
    pub efficiency: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_r_series_is_0_6_ohm() {
        let sc = ScConverter::paper_28nm();
        assert!((sc.r_series_at_nominal() - 0.6).abs() < 0.005);
        assert!((sc.r_ssl(50e6) - 0.3125).abs() < 1e-9);
        assert!((sc.r_fsl() - 0.512).abs() < 0.001);
    }

    #[test]
    fn r_ssl_is_inverse_in_frequency() {
        let sc = ScConverter::paper_28nm();
        assert!((sc.r_ssl(25e6) - 2.0 * sc.r_ssl(50e6)).abs() < 1e-12);
    }

    #[test]
    fn open_loop_vdrop_is_linear_in_load() {
        // Fig 3b: V_drop rises linearly to ≈54 mV at 90 mA.
        let sc = ScConverter::paper_28nm();
        let op = sc.operate(2.0, 0.0, 0.09);
        assert!((op.v_drop - 0.054).abs() < 0.002, "got {}", op.v_drop);
        let half = sc.operate(2.0, 0.0, 0.045);
        assert!((op.v_drop - 2.0 * half.v_drop).abs() < 1e-9);
    }

    #[test]
    fn open_loop_efficiency_rises_with_load() {
        // Fig 3b: ≈50% at 10 mA rising to ≳80% at 90 mA.
        let sc = ScConverter::paper_28nm();
        let low = sc.operate(2.0, 0.0, 0.01).efficiency;
        let high = sc.operate(2.0, 0.0, 0.09).efficiency;
        assert!(low > 0.40 && low < 0.60, "low-load efficiency {low}");
        assert!(high > 0.80 && high < 0.90, "high-load efficiency {high}");
    }

    #[test]
    fn closed_loop_beats_open_loop_at_light_load() {
        // Fig 3a vs 3b: closed-loop modulation rescues light-load
        // efficiency.
        let ol = ScConverter::paper_28nm();
        let cl = ScConverter::paper_28nm_closed_loop();
        for i in [0.0016, 0.0031, 0.0063, 0.0125, 0.025] {
            let e_ol = ol.operate(2.0, 0.0, i).efficiency;
            let e_cl = cl.operate(2.0, 0.0, i).efficiency;
            assert!(
                e_cl > e_ol,
                "closed loop should win at {i} A: {e_cl} vs {e_ol}"
            );
        }
    }

    #[test]
    fn closed_loop_efficiency_stays_high_across_decades() {
        // Fig 3a: ≳60% from 1.6 mA to 100 mA.
        let cl = ScConverter::paper_28nm_closed_loop();
        for i in [0.0016, 0.0063, 0.025, 0.05, 0.1] {
            let e = cl.operate(2.0, 0.0, i).efficiency;
            assert!(e > 0.6, "closed-loop efficiency at {i} A is {e}");
        }
    }

    #[test]
    fn sinking_current_raises_output() {
        let sc = ScConverter::paper_28nm();
        let op = sc.operate(2.0, 0.0, -0.05);
        assert!(op.v_out > 1.0);
        assert!((op.v_out - 1.03).abs() < 0.005);
    }

    #[test]
    fn ideal_output_is_midpoint_of_rails() {
        let sc = ScConverter::paper_28nm();
        let op = sc.operate(3.0, 1.0, 0.0);
        assert!((op.v_out - 2.0).abs() < 1e-12);
        assert_eq!(op.v_drop, 0.0);
    }

    #[test]
    fn zero_load_efficiency_is_zero_open_loop() {
        // Open loop still burns parasitic power with no output: η = 0.
        let sc = ScConverter::paper_28nm();
        let op = sc.operate(2.0, 0.0, 0.0);
        assert_eq!(op.efficiency, 0.0);
        assert!(op.p_parasitic > 0.0);
    }

    #[test]
    fn overload_detection() {
        let sc = ScConverter::paper_28nm();
        assert!(!sc.is_overloaded(0.1));
        assert!(sc.is_overloaded(0.1001));
        assert!(sc.is_overloaded(-0.2));
    }

    #[test]
    #[should_panic(expected = "positive headroom")]
    fn inverted_rails_rejected() {
        ScConverter::paper_28nm().operate(0.0, 1.0, 0.0);
    }
}
