//! Circuit-level simulation of the paper's Fig 1: three stacked loads with
//! two push-pull SC converters regulating the intermediate rails.
//!
//! This is the smallest complete voltage-stacking system, simulated at the
//! switched-netlist level (no compact models anywhere): each converter is
//! the full two-fly-cap, eight-switch cell of [`crate::detailed`], the
//! loads are current sources between adjacent rails, and the off-chip
//! supply is `3·Vdd`. It demonstrates — from raw switch/capacitor physics —
//! that the converters really do hold every load's headroom near `Vdd`
//! while sourcing/sinking only the inter-layer mismatch.
//!
//! The PDN crate's architecture-level converter stamps are the compact
//! abstraction of exactly this circuit.

use vstack_circuit::transient::{Clock, InitialState, Transient};
use vstack_circuit::{Circuit, CircuitError, NodeId, SwitchPhase, GROUND};

use crate::compact::ScConverter;

/// Configuration of the three-layer stacked-load bench.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StackedSim {
    /// Converter design for both cells.
    pub converter: ScConverter,
    /// Per-layer nominal supply (1 V platform).
    pub vdd: f64,
    /// Switching periods to simulate.
    pub periods: usize,
    /// Timesteps per period.
    pub steps_per_period: usize,
    /// Trailing periods for measurement.
    pub measure_periods: usize,
    /// Rail decoupling capacitance at each intermediate rail.
    pub c_rail: f64,
}

impl StackedSim {
    /// Default bench for a converter design.
    pub fn new(converter: ScConverter) -> Self {
        StackedSim {
            converter,
            vdd: 1.0,
            periods: 60,
            steps_per_period: 160,
            measure_periods: 15,
            c_rail: 10e-9,
        }
    }

    /// Adds one push-pull 2:1 cell between `top` and `bottom` with its
    /// output on `mid`.
    fn add_cell(&self, ckt: &mut Circuit, top: NodeId, mid: NodeId, bottom: NodeId, tag: &str) {
        let sc = &self.converter;
        let c_fly = sc.c_tot / 2.0;
        let r_on = 1.43 / sc.g_tot;
        let r_off = 1e9;
        let bp = sc.parasitics.bottom_plate_ratio;
        let nominal = self.vdd;

        let c1t = ckt.node(&format!("{tag}_c1t"));
        let c1b = ckt.node(&format!("{tag}_c1b"));
        ckt.capacitor_with_ic(c1t, c1b, c_fly, nominal);
        ckt.capacitor(c1b, GROUND, bp * c_fly);
        ckt.switch(c1t, top, r_on, r_off, SwitchPhase::A);
        ckt.switch(c1b, mid, r_on, r_off, SwitchPhase::A);
        ckt.switch(c1t, mid, r_on, r_off, SwitchPhase::B);
        ckt.switch(c1b, bottom, r_on, r_off, SwitchPhase::B);

        let c2t = ckt.node(&format!("{tag}_c2t"));
        let c2b = ckt.node(&format!("{tag}_c2b"));
        ckt.capacitor_with_ic(c2t, c2b, c_fly, nominal);
        ckt.capacitor(c2b, GROUND, bp * c_fly);
        ckt.switch(c2t, top, r_on, r_off, SwitchPhase::B);
        ckt.switch(c2b, mid, r_on, r_off, SwitchPhase::B);
        ckt.switch(c2t, mid, r_on, r_off, SwitchPhase::A);
        ckt.switch(c2b, bottom, r_on, r_off, SwitchPhase::A);
    }

    /// Simulates the three stacked loads drawing `i_loads = [i_bottom,
    /// i_middle, i_top]` amperes and returns the steady-state rail
    /// measurements.
    ///
    /// # Errors
    ///
    /// Propagates [`CircuitError`] from the transient engine.
    ///
    /// # Panics
    ///
    /// Panics if any load current is not finite and non-negative.
    pub fn simulate(&self, i_loads: [f64; 3]) -> Result<StackedMeasurement, CircuitError> {
        assert!(
            i_loads.iter().all(|i| i.is_finite() && *i >= 0.0),
            "load currents must be finite and non-negative"
        );
        let f_sw = self.converter.f_nom;
        let period = 1.0 / f_sw;

        let mut ckt = Circuit::new();
        let v3 = ckt.node("rail3");
        let v2 = ckt.node("rail2");
        let v1 = ckt.node("rail1");
        ckt.voltage_source(v3, GROUND, 3.0 * self.vdd);

        // Intermediate-rail decoupling, pre-charged to the ideal split.
        ckt.capacitor_with_ic(v2, GROUND, self.c_rail, 2.0 * self.vdd);
        ckt.capacitor_with_ic(v1, GROUND, self.c_rail, self.vdd);

        // Three stacked loads (current sources between adjacent rails).
        ckt.current_source(v1, GROUND, i_loads[0]);
        ckt.current_source(v2, v1, i_loads[1]);
        ckt.current_source(v3, v2, i_loads[2]);

        // Two ladder cells: rail2 regulated from (rail3, rail1), rail1
        // from (rail2, ground) — the Fig 1 arrangement.
        self.add_cell(&mut ckt, v3, v2, v1, "u");
        self.add_cell(&mut ckt, v2, v1, GROUND, "l");

        let tr = Transient {
            dt: period / self.steps_per_period as f64,
            duration: period * self.periods as f64,
            clock: Some(Clock { frequency_hz: f_sw }),
            initial: InitialState::Zero,
        };
        let result = tr.run(&ckt, &[v1, v2])?;

        let t_end = period * self.periods as f64;
        let t0 = t_end - period * self.measure_periods as f64;
        let rail1 = result
            .voltage(v1)
            .expect("probed")
            .average_between(t0, t_end)
            .expect("window");
        let rail2 = result
            .voltage(v2)
            .expect("probed")
            .average_between(t0, t_end)
            .expect("window");
        Ok(StackedMeasurement {
            rail1,
            rail2,
            headroom: [rail1, rail2 - rail1, 3.0 * self.vdd - rail2],
        })
    }
}

/// Steady-state rail voltages of the stacked bench.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StackedMeasurement {
    /// Intermediate rail 1 (ideal: `Vdd`).
    pub rail1: f64,
    /// Intermediate rail 2 (ideal: `2·Vdd`).
    pub rail2: f64,
    /// Per-layer voltage headroom `[bottom, middle, top]` (ideal: `Vdd`
    /// each).
    pub headroom: [f64; 3],
}

impl StackedMeasurement {
    /// Largest deviation of any layer's headroom from the nominal `vdd`.
    pub fn worst_headroom_error(&self, vdd: f64) -> f64 {
        self.headroom
            .iter()
            .map(|h| (h - vdd).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench() -> StackedSim {
        StackedSim::new(ScConverter::paper_28nm())
    }

    #[test]
    fn balanced_loads_split_evenly() {
        let m = bench().simulate([0.05, 0.05, 0.05]).unwrap();
        assert!(
            m.worst_headroom_error(1.0) < 0.05,
            "balanced stack should sit at Vdd per layer: {:?}",
            m.headroom
        );
    }

    #[test]
    fn converters_absorb_imbalance() {
        // Middle layer idles: without regulation its headroom would rail
        // toward 3 V while the others collapse; the converters must hold
        // every layer within a few percent of Vdd.
        let m = bench().simulate([0.06, 0.005, 0.06]).unwrap();
        assert!(
            m.worst_headroom_error(1.0) < 0.10,
            "regulated stack must bound imbalance noise: {:?}",
            m.headroom
        );
    }

    #[test]
    fn heavier_imbalance_means_more_rail_error() {
        let mild = bench().simulate([0.05, 0.04, 0.05]).unwrap();
        let harsh = bench().simulate([0.06, 0.005, 0.06]).unwrap();
        assert!(
            harsh.worst_headroom_error(1.0) > mild.worst_headroom_error(1.0),
            "mild {:?} vs harsh {:?}",
            mild.headroom,
            harsh.headroom
        );
    }

    #[test]
    fn top_heavy_and_bottom_heavy_are_mirrored() {
        let top = bench().simulate([0.01, 0.03, 0.06]).unwrap();
        let bottom = bench().simulate([0.06, 0.03, 0.01]).unwrap();
        // Mirror symmetry of the ladder: headroom profiles reverse.
        assert!(
            (top.headroom[0] - bottom.headroom[2]).abs() < 0.03,
            "top {:?} vs bottom {:?}",
            top.headroom,
            bottom.headroom
        );
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_load_rejected() {
        let _ = bench().simulate([-0.01, 0.0, 0.0]);
    }
}
