//! Detailed switched-netlist simulation of the 2:1 push-pull converter —
//! the "circuit simulation" side of the paper's Fig 3 model validation.
//!
//! The paper implements the converter in a commercial 28 nm process and
//! simulates it with Cadence Spectre. We substitute a transistor-free but
//! topology-exact model: two fly capacitors, eight clocked switches with
//! on/off resistances (Fig 1's `SW1…SW8`), bottom-plate parasitic
//! capacitors, an output decoupling capacitor and a current-source load,
//! integrated with the backward-Euler transient engine of `vstack-circuit`.
//! Charge-sharing (SSL) loss, conduction (FSL) loss and bottom-plate loss
//! all emerge from the waveforms rather than from formulas, which is what
//! makes the comparison against the compact model a real validation.
//!
//! Gate-drive and controller power do not exist in a switch-level netlist,
//! so they are added analytically to the measured input power — the same
//! accounting Spectre users apply when the gate drivers live in a separate
//! test bench.

use vstack_circuit::transient::{Clock, InitialState, Transient};
use vstack_circuit::{Circuit, CircuitError, SwitchPhase, GROUND};

use crate::compact::ScConverter;

/// Configuration for a detailed converter simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetailedSim {
    /// The converter design being simulated (provides C_tot, G_tot, f_nom,
    /// parasitics and the control policy).
    pub converter: ScConverter,
    /// Switching periods to simulate (must allow settling).
    pub periods: usize,
    /// Timesteps per switching period.
    pub steps_per_period: usize,
    /// Trailing periods over which output quantities are averaged.
    pub measure_periods: usize,
    /// Output decoupling capacitance in farads.
    pub c_load: f64,
}

impl DetailedSim {
    /// Default simulation setup for a converter: 40 periods at 200
    /// steps/period, measuring over the last 10.
    pub fn new(converter: ScConverter) -> Self {
        DetailedSim {
            converter,
            periods: 40,
            steps_per_period: 200,
            measure_periods: 10,
            c_load: 10e-9,
        }
    }

    /// Builds the switched netlist and runs it to (periodic) steady state
    /// with input voltage `v_in` and a constant `i_load` drawn from the
    /// output node.
    ///
    /// # Errors
    ///
    /// Propagates [`CircuitError`] from the transient engine (singular
    /// systems, bad time bases).
    ///
    /// # Panics
    ///
    /// Panics if `v_in` or `i_load` is not finite and positive.
    pub fn simulate(&self, v_in: f64, i_load: f64) -> Result<DetailedMeasurement, CircuitError> {
        assert!(v_in.is_finite() && v_in > 0.0, "v_in must be positive");
        assert!(
            i_load.is_finite() && i_load > 0.0,
            "i_load must be positive"
        );
        let sc = &self.converter;
        let f_sw = sc.control.frequency(sc.f_nom, i_load, sc.i_rated);
        let period = 1.0 / f_sw;

        let mut ckt = Circuit::new();
        let vin = ckt.node("vin");
        let out = ckt.node("out");
        let vsrc = ckt.voltage_source(vin, GROUND, v_in);

        // Two fly capacitors, each half the total, pre-charged to v_in/2.
        let c_fly = sc.c_tot / 2.0;
        // Switch sizing: each phase conducts through two switches in series
        // per cell, with both push-pull cells active every phase. The
        // netlist's measured output impedance is SSL-floor 0.35 Ω plus an
        // FSL term linear in r_on (see the ignored `impedance_probe` test);
        // r_on = 1.43/G_tot calibrates the total to the compact model's
        // R_SERIES (0.60 Ω for the paper's converter).
        let r_on = 1.43 / sc.g_tot;
        let r_off = 1e9;
        let bp_ratio = sc.parasitics.bottom_plate_ratio;

        // Cell 1: charges from the input in phase A, discharges into the
        // output in phase B.
        let c1t = ckt.node("c1_top");
        let c1b = ckt.node("c1_bot");
        ckt.capacitor_with_ic(c1t, c1b, c_fly, v_in / 2.0);
        ckt.capacitor(c1b, GROUND, bp_ratio * c_fly);
        ckt.switch(c1t, vin, r_on, r_off, SwitchPhase::A); // SW1
        ckt.switch(c1b, out, r_on, r_off, SwitchPhase::A); // SW3
        ckt.switch(c1t, out, r_on, r_off, SwitchPhase::B); // SW5
        ckt.switch(c1b, GROUND, r_on, r_off, SwitchPhase::B); // SW7

        // Cell 2: the push-pull complement on opposite phases.
        let c2t = ckt.node("c2_top");
        let c2b = ckt.node("c2_bot");
        ckt.capacitor_with_ic(c2t, c2b, c_fly, v_in / 2.0);
        ckt.capacitor(c2b, GROUND, bp_ratio * c_fly);
        ckt.switch(c2t, vin, r_on, r_off, SwitchPhase::B); // SW2
        ckt.switch(c2b, out, r_on, r_off, SwitchPhase::B); // SW4
        ckt.switch(c2t, out, r_on, r_off, SwitchPhase::A); // SW6
        ckt.switch(c2b, GROUND, r_on, r_off, SwitchPhase::A); // SW8

        // Output decoupling pre-charged near the ideal output, plus the load.
        ckt.capacitor_with_ic(out, GROUND, self.c_load, v_in / 2.0);
        ckt.current_source(out, GROUND, i_load);

        let tr = Transient {
            dt: period / self.steps_per_period as f64,
            duration: period * self.periods as f64,
            clock: Some(Clock { frequency_hz: f_sw }),
            initial: InitialState::Zero,
        };
        let result = tr.run(&ckt, &[out])?;

        let t_end = period * self.periods as f64;
        let t_meas = t_end - period * self.measure_periods as f64;
        let out_wave = result.voltage(out).expect("probed node");
        let v_out = out_wave
            .average_between(t_meas, t_end)
            .expect("measurement window");
        let ripple = out_wave.ripple_between(t_meas, t_end).expect("ripple");
        // Branch current is plus→through-source→minus; the current delivered
        // into the circuit from the + terminal is its negation.
        let i_in = -result
            .branch_current(vsrc)
            .expect("source branch")
            .average_between(t_meas, t_end)
            .expect("measurement window");

        let p_switching = v_in * i_in;
        let p_overhead = sc.parasitics.gate_energy_j * f_sw + sc.parasitics.controller_w;
        let p_in = p_switching + p_overhead;
        let p_out = v_out * i_load;
        Ok(DetailedMeasurement {
            v_out,
            v_drop: v_in / 2.0 - v_out,
            v_ripple: ripple,
            p_in,
            p_out,
            efficiency: p_out / p_in,
            f_sw,
        })
    }
}

/// Steady-state quantities extracted from a detailed simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetailedMeasurement {
    /// Cycle-averaged output voltage.
    pub v_out: f64,
    /// Drop below the ideal `v_in / 2` output.
    pub v_drop: f64,
    /// Peak-to-peak output ripple over the measurement window.
    pub v_ripple: f64,
    /// Input power including analytic gate/controller overhead.
    pub p_in: f64,
    /// Output power delivered to the load.
    pub p_out: f64,
    /// `P_out / P_in`.
    pub efficiency: f64,
    /// Switching frequency used (follows the converter's control policy).
    pub f_sw: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converter_divides_by_two() {
        let sim = DetailedSim::new(ScConverter::paper_28nm());
        let m = sim.simulate(2.0, 0.05).expect("simulation");
        assert!(
            (m.v_out - 1.0).abs() < 0.08,
            "expected ≈1 V output, got {}",
            m.v_out
        );
        assert!(m.v_drop > 0.0, "loaded converter must droop");
    }

    #[test]
    fn output_droop_grows_with_load() {
        let sim = DetailedSim::new(ScConverter::paper_28nm());
        let light = sim.simulate(2.0, 0.01).unwrap();
        let heavy = sim.simulate(2.0, 0.09).unwrap();
        assert!(heavy.v_drop > 2.0 * light.v_drop);
    }

    #[test]
    fn efficiency_rises_with_load_open_loop() {
        let sim = DetailedSim::new(ScConverter::paper_28nm());
        let light = sim.simulate(2.0, 0.01).unwrap();
        let heavy = sim.simulate(2.0, 0.09).unwrap();
        assert!(heavy.efficiency > light.efficiency);
        assert!(heavy.efficiency > 0.7, "got {}", heavy.efficiency);
        assert!(light.efficiency < 0.65, "got {}", light.efficiency);
    }

    #[test]
    fn energy_is_conserved() {
        let sim = DetailedSim::new(ScConverter::paper_28nm());
        let m = sim.simulate(2.0, 0.05).unwrap();
        assert!(m.p_in > m.p_out, "losses must be positive");
        assert!(m.efficiency > 0.0 && m.efficiency < 1.0);
    }

    #[test]
    fn closed_loop_slows_clock_at_light_load() {
        let sim = DetailedSim::new(ScConverter::paper_28nm_closed_loop());
        let m = sim.simulate(2.0, 0.0125).unwrap();
        assert!((m.f_sw - 6.25e6).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "i_load must be positive")]
    fn zero_load_rejected() {
        let sim = DetailedSim::new(ScConverter::paper_28nm());
        let _ = sim.simulate(2.0, 0.0);
    }
}

#[cfg(test)]
mod probe {
    use super::*;

    #[test]
    #[ignore]
    fn impedance_probe() {
        for r_on_scale in [0.01f64, 0.5, 1.0, 1.43, 2.0] {
            let mut sc = ScConverter::paper_28nm();
            // Hack: scale g_tot so r_on = scale * 2/g_tot_orig
            sc.g_tot = ScConverter::paper_28nm().g_tot / r_on_scale;
            let sim = DetailedSim::new(sc);
            let d30 = sim.simulate(2.0, 0.03).unwrap();
            let d80 = sim.simulate(2.0, 0.08).unwrap();
            let r_out = (d80.v_drop - d30.v_drop) / 0.05;
            println!(
                "r_on_scale {r_on_scale}: vdrop30 {:.4} vdrop80 {:.4} R_out {:.4}",
                d30.v_drop, d80.v_drop, r_out
            );
        }
    }
}
