//! Switching-frequency control policies.
//!
//! The paper evaluates two schemes (its Fig 3): **open-loop** control keeps
//! the switching frequency constant, so the fixed switching losses dominate
//! at light load; **closed-loop** control modulates frequency with load
//! current, which scales switching loss down and raises light-load
//! efficiency. The paper's system-level studies use open-loop converters
//! (closed-loop is future work there); we implement both.

/// Frequency-modulation policy of an SC converter.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ControlPolicy {
    /// Constant switching frequency at the nominal value.
    #[default]
    OpenLoop,
    /// Frequency proportional to load current:
    /// `f = f_nom · clamp(|i| / i_rated, min_ratio, 1)`.
    ClosedLoop {
        /// Lower bound on `f / f_nom`, preventing the converter from
        /// stalling at zero load. The paper's converter sweeps down to
        /// 1.6 mA from a 100 mA rating, so 1/64 is the default used by
        /// [`ControlPolicy::closed_loop`].
        min_ratio: f64,
    },
}

impl ControlPolicy {
    /// Closed-loop policy with the default minimum frequency ratio (1/64).
    pub fn closed_loop() -> Self {
        ControlPolicy::ClosedLoop {
            min_ratio: 1.0 / 64.0,
        }
    }

    /// Switching frequency for a given load, where `f_nom` is the nominal
    /// (open-loop) frequency and `i_rated` the converter's rated current.
    ///
    /// # Panics
    ///
    /// Panics if `f_nom` or `i_rated` is not finite and positive.
    pub fn frequency(&self, f_nom: f64, i_load: f64, i_rated: f64) -> f64 {
        assert!(f_nom.is_finite() && f_nom > 0.0, "f_nom must be positive");
        assert!(
            i_rated.is_finite() && i_rated > 0.0,
            "i_rated must be positive"
        );
        match *self {
            ControlPolicy::OpenLoop => f_nom,
            ControlPolicy::ClosedLoop { min_ratio } => {
                let ratio = (i_load.abs() / i_rated).clamp(min_ratio, 1.0);
                f_nom * ratio
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_loop_is_constant() {
        let p = ControlPolicy::OpenLoop;
        assert_eq!(p.frequency(50e6, 0.001, 0.1), 50e6);
        assert_eq!(p.frequency(50e6, 0.1, 0.1), 50e6);
    }

    #[test]
    fn closed_loop_scales_with_load() {
        let p = ControlPolicy::closed_loop();
        assert_eq!(p.frequency(50e6, 0.05, 0.1), 25e6);
        assert_eq!(p.frequency(50e6, 0.1, 0.1), 50e6);
        // Above rating: clamped to nominal.
        assert_eq!(p.frequency(50e6, 0.2, 0.1), 50e6);
    }

    #[test]
    fn closed_loop_floor() {
        let p = ControlPolicy::closed_loop();
        let f = p.frequency(64e6, 0.0, 0.1);
        assert_eq!(f, 1e6);
    }

    #[test]
    fn closed_loop_uses_magnitude() {
        // Push-pull converters sink as well as source; frequency follows |i|.
        let p = ControlPolicy::closed_loop();
        assert_eq!(p.frequency(50e6, -0.05, 0.1), 25e6);
    }
}
