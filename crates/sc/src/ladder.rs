//! Multi-output ladder extension of the 2:1 converter for many-layer
//! stacks.
//!
//! The paper extends the two-load converter of ref \[9\] "into a scalable,
//! multi-output ladder SC" (§2.1, Fig 1): an `N`-layer stack has `N − 1`
//! intermediate rails, and each intermediate rail `r_i` is regulated by 2:1
//! cells spanning its neighbours `r_{i+1}` and `r_{i-1}` — so converters at
//! adjacent interfaces share rails, exactly like the ladder capacitor
//! string in the paper's Fig 1 (three loads, two converters).
//!
//! [`LadderSc`] captures that structure: which rail each converter
//! regulates, which rails it senses, and how many converter cells sit at
//! each interface. The PDN model consumes this to place converter stamps;
//! the efficiency model consumes it to aggregate per-cell losses.

use crate::compact::ScConverter;

/// One 2:1 cell within a ladder: regulates `rail_out` between `rail_top`
/// and `rail_bottom` (rail 0 is board ground, rail `n_layers` the off-chip
/// supply).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LadderCell {
    /// Rail index the cell drives.
    pub rail_out: usize,
    /// Upper sensed rail (`rail_out + 1`).
    pub rail_top: usize,
    /// Lower sensed rail (`rail_out − 1`).
    pub rail_bottom: usize,
}

/// A ladder of push-pull 2:1 cells regulating every intermediate rail of an
/// `n_layers` stack.
///
/// # Example
///
/// ```
/// use vstack_sc::ladder::LadderSc;
/// use vstack_sc::compact::ScConverter;
///
/// let ladder = LadderSc::new(ScConverter::paper_28nm(), 4, 2);
/// // A 4-layer stack has 3 intermediate rails, each with 2 cells.
/// assert_eq!(ladder.cells().len(), 6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LadderSc {
    converter: ScConverter,
    n_layers: usize,
    cells_per_rail: usize,
    cells: Vec<LadderCell>,
}

impl LadderSc {
    /// Builds a ladder for `n_layers` stacked loads with `cells_per_rail`
    /// parallel converter cells on each intermediate rail.
    ///
    /// # Panics
    ///
    /// Panics if `n_layers < 2` or `cells_per_rail == 0`.
    pub fn new(converter: ScConverter, n_layers: usize, cells_per_rail: usize) -> Self {
        assert!(n_layers >= 2, "a stack needs at least two layers");
        assert!(cells_per_rail >= 1, "each rail needs at least one cell");
        let mut cells = Vec::with_capacity((n_layers - 1) * cells_per_rail);
        for rail in 1..n_layers {
            for _ in 0..cells_per_rail {
                cells.push(LadderCell {
                    rail_out: rail,
                    rail_top: rail + 1,
                    rail_bottom: rail - 1,
                });
            }
        }
        LadderSc {
            converter,
            n_layers,
            cells_per_rail,
            cells,
        }
    }

    /// The underlying converter design.
    pub fn converter(&self) -> &ScConverter {
        &self.converter
    }

    /// Number of stacked layers.
    pub fn n_layers(&self) -> usize {
        self.n_layers
    }

    /// Parallel cells per intermediate rail.
    pub fn cells_per_rail(&self) -> usize {
        self.cells_per_rail
    }

    /// All cells, ordered by rail then replica.
    pub fn cells(&self) -> &[LadderCell] {
        &self.cells
    }

    /// Ideal (lossless, balanced) voltage of rail `i` when the off-chip
    /// supply is `n_layers · vdd`.
    ///
    /// # Panics
    ///
    /// Panics if `rail > n_layers`.
    pub fn ideal_rail_voltage(&self, rail: usize, vdd: f64) -> f64 {
        assert!(rail <= self.n_layers, "rail {rail} out of range");
        rail as f64 * vdd
    }

    /// Total current capability at one intermediate rail (all parallel
    /// cells combined).
    pub fn rail_current_limit(&self) -> f64 {
        self.converter.i_rated * self.cells_per_rail as f64
    }

    /// Splits a rail mismatch current evenly across the rail's parallel
    /// cells and reports the per-cell current.
    pub fn per_cell_current(&self, rail_mismatch: f64) -> f64 {
        rail_mismatch / self.cells_per_rail as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ladder(n: usize, k: usize) -> LadderSc {
        LadderSc::new(ScConverter::paper_28nm(), n, k)
    }

    #[test]
    fn two_layer_ladder_is_single_interface() {
        let l = ladder(2, 1);
        assert_eq!(l.cells().len(), 1);
        let c = l.cells()[0];
        assert_eq!((c.rail_bottom, c.rail_out, c.rail_top), (0, 1, 2));
    }

    #[test]
    fn eight_layer_ladder_has_seven_rails() {
        let l = ladder(8, 4);
        assert_eq!(l.cells().len(), 7 * 4);
        // Every intermediate rail 1..=7 appears exactly 4 times.
        for rail in 1..8 {
            let count = l.cells().iter().filter(|c| c.rail_out == rail).count();
            assert_eq!(count, 4);
        }
    }

    #[test]
    fn cells_span_adjacent_rails() {
        for cell in ladder(6, 2).cells() {
            assert_eq!(cell.rail_top, cell.rail_out + 1);
            assert_eq!(cell.rail_bottom, cell.rail_out - 1);
        }
    }

    #[test]
    fn ideal_rail_voltages_are_multiples_of_vdd() {
        let l = ladder(4, 1);
        assert_eq!(l.ideal_rail_voltage(0, 1.0), 0.0);
        assert_eq!(l.ideal_rail_voltage(2, 1.0), 2.0);
        assert_eq!(l.ideal_rail_voltage(4, 1.0), 4.0);
    }

    #[test]
    fn rail_limit_scales_with_parallel_cells() {
        assert!((ladder(4, 8).rail_current_limit() - 0.8).abs() < 1e-12);
        assert!((ladder(4, 8).per_cell_current(0.4) - 0.05).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least two layers")]
    fn single_layer_rejected() {
        ladder(1, 1);
    }
}
