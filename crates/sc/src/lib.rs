//! Switched-capacitor (SC) converter models for voltage-stacked power
//! delivery.
//!
//! Voltage stacking needs *differential* regulators: push-pull converters
//! that source or sink only the current **mismatch** between adjacent layers
//! (paper §2.1). This crate models the 2:1 push-pull SC converter the paper
//! implements in 28 nm (its Fig 1) at two levels of abstraction:
//!
//! * [`compact`] — the analytic output-impedance model of Seeman's design
//!   methodology (paper ref \[14\], and the paper's Fig 2):
//!   slow-switching limit `R_SSL`, fast-switching limit `R_FSL`, series
//!   resistance `R_SERIES = √(R_SSL² + R_FSL²)`, plus parasitic
//!   (bottom-plate, gate-drive, controller) losses and
//!   [`control::ControlPolicy`] open-/closed-loop frequency modulation.
//! * [`detailed`] — a full switched netlist of the converter (two fly
//!   capacitors, eight clocked switches, bottom-plate parasitics) simulated
//!   with the `vstack-circuit` transient engine. This is the crate's
//!   "Spectre substitute" and powers the Fig 3 model-validation experiment.
//!
//! The [`stacked`] module assembles the paper's Fig 1 system — three
//! stacked loads with two of these converter cells — entirely at the
//! switched-netlist level, demonstrating charge-recycled regulation from
//! raw switch/capacitor physics.
//!
//! Supporting modules: [`area`] (MIM / ferroelectric / deep-trench capacitor
//! area, the 3%-of-an-ARM-core figure used by the equal-area comparison of
//! Fig 6) and [`ladder`] (the scalable multi-output ladder extension for
//! many-layer stacks, paper §2.1).
//!
//! # Example
//!
//! ```
//! use vstack_sc::compact::ScConverter;
//!
//! let sc = ScConverter::paper_28nm();
//! // R_SERIES of the implemented converter is 0.6 Ω (paper §3.1).
//! assert!((sc.r_series_at_nominal() - 0.6).abs() < 0.01);
//! // Open-loop operating point at 50 mA load from a 2 V input:
//! let op = sc.operate(2.0, 0.0, 0.05);
//! assert!(op.v_out < 1.0 && op.v_out > 0.9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod compact;
pub mod control;
pub mod detailed;
pub mod ladder;
pub mod stacked;

pub use area::CapacitorTech;
pub use compact::{ScConverter, ScOperatingPoint};
pub use control::ControlPolicy;
