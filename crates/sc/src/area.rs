//! Converter area as a function of integrated-capacitor technology.
//!
//! The fly capacitors dominate an SC converter's silicon area. The paper
//! implements the converter with MIM capacitors (0.472 mm² per converter)
//! and also reports the area if built with higher-density ferroelectric
//! (0.102 mm²) or deep-trench (0.082 mm²) capacitors (§3.1). With
//! high-density capacitors, one converter costs ≈3% of an ARM core's area —
//! the exchange rate behind the paper's equal-area comparison of a V-S PDN
//! (8 converters/core, Few TSVs) against a regular PDN (Dense TSVs).

/// Integrated capacitor technology used for the converter fly caps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CapacitorTech {
    /// Metal–insulator–metal capacitors (baseline implementation).
    Mim,
    /// Ferroelectric capacitors (paper ref \[17\]).
    #[default]
    Ferroelectric,
    /// Deep-trench capacitors (paper ref \[12\]).
    DeepTrench,
}

impl CapacitorTech {
    /// Area of one converter (8 nF total fly capacitance, 4-way
    /// interleaved) in mm², as reported in paper §3.1.
    pub fn converter_area_mm2(self) -> f64 {
        match self {
            CapacitorTech::Mim => 0.472,
            CapacitorTech::Ferroelectric => 0.102,
            CapacitorTech::DeepTrench => 0.082,
        }
    }

    /// Capacitance density relative to MIM (useful for scaling studies).
    pub fn density_vs_mim(self) -> f64 {
        CapacitorTech::Mim.converter_area_mm2() / self.converter_area_mm2()
    }
}

/// Total converter area for `converters_per_core` converters on each of
/// `cores` cores, in mm².
pub fn total_converter_area_mm2(
    tech: CapacitorTech,
    converters_per_core: usize,
    cores: usize,
) -> f64 {
    tech.converter_area_mm2() * converters_per_core as f64 * cores as f64
}

/// Converter area as a fraction of a core's area.
///
/// With the paper's 2.76 mm² ARM core (44.12 mm² / 16 cores) and
/// high-density capacitors this evaluates to ≈3% (paper §5.2).
pub fn area_overhead_per_core(tech: CapacitorTech, core_area_mm2: f64) -> f64 {
    assert!(
        core_area_mm2.is_finite() && core_area_mm2 > 0.0,
        "core area must be positive"
    );
    tech.converter_area_mm2() / core_area_mm2
}

#[cfg(test)]
mod tests {
    use super::*;

    const CORE_AREA_MM2: f64 = 44.12 / 16.0;

    #[test]
    fn paper_area_values() {
        assert_eq!(CapacitorTech::Mim.converter_area_mm2(), 0.472);
        assert_eq!(CapacitorTech::Ferroelectric.converter_area_mm2(), 0.102);
        assert_eq!(CapacitorTech::DeepTrench.converter_area_mm2(), 0.082);
    }

    #[test]
    fn high_density_converter_is_about_three_percent_of_core() {
        let frac = area_overhead_per_core(CapacitorTech::Ferroelectric, CORE_AREA_MM2);
        assert!(frac > 0.025 && frac < 0.045, "got {frac}");
        let frac = area_overhead_per_core(CapacitorTech::DeepTrench, CORE_AREA_MM2);
        assert!(frac > 0.02 && frac < 0.04, "got {frac}");
    }

    #[test]
    fn density_ordering() {
        assert!(
            CapacitorTech::DeepTrench.density_vs_mim()
                > CapacitorTech::Ferroelectric.density_vs_mim()
        );
        assert!(CapacitorTech::Ferroelectric.density_vs_mim() > 1.0);
        assert_eq!(CapacitorTech::Mim.density_vs_mim(), 1.0);
    }

    #[test]
    fn total_area_scales_linearly() {
        let one = total_converter_area_mm2(CapacitorTech::Mim, 1, 1);
        let many = total_converter_area_mm2(CapacitorTech::Mim, 8, 16);
        assert!((many - one * 128.0).abs() < 1e-12);
    }
}
