//! Property-based tests for the SC converter compact model.

use proptest::prelude::*;
use vstack_sc::compact::ScConverter;
use vstack_sc::ControlPolicy;

proptest! {
    /// Output impedance formulas behave: R_SSL falls with frequency,
    /// R_FSL is frequency-independent, R_SERIES ≥ both components.
    #[test]
    fn impedance_structure(f1 in 1e6..100e6f64, f2 in 1e6..100e6f64) {
        let sc = ScConverter::paper_28nm();
        let (lo, hi) = if f1 < f2 { (f1, f2) } else { (f2, f1) };
        prop_assert!(sc.r_ssl(lo) >= sc.r_ssl(hi));
        prop_assert!((sc.r_fsl() - sc.r_fsl()).abs() < 1e-15);
        prop_assert!(sc.r_series(f1) >= sc.r_ssl(f1));
        prop_assert!(sc.r_series(f1) >= sc.r_fsl());
    }

    /// The operating point is consistent: output voltage, drop and losses
    /// satisfy their defining identities for any feasible input.
    #[test]
    fn operating_point_identities(
        v_top in 1.2..4.0f64,
        i in -0.1..0.1f64,
    ) {
        let sc = ScConverter::paper_28nm();
        let op = sc.operate(v_top, 0.0, i);
        let v_ideal = v_top / 2.0;
        prop_assert!((op.v_out - (v_ideal - i * op.r_series)).abs() < 1e-12);
        prop_assert!((op.v_drop - (i * op.r_series).abs()).abs() < 1e-12);
        prop_assert!((op.p_conduction - i * i * op.r_series).abs() < 1e-12);
        prop_assert!(op.p_parasitic > 0.0);
        prop_assert!(op.efficiency >= 0.0 && op.efficiency < 1.0);
    }

    /// Closed-loop never has lower efficiency than open loop for the same
    /// sourcing load (its switching loss can only shrink).
    #[test]
    fn closed_loop_dominates(i in 0.001..0.1f64) {
        let open = ScConverter::paper_28nm();
        let closed = ScConverter::paper_28nm_closed_loop();
        let e_open = open.operate(2.0, 0.0, i).efficiency;
        let e_closed = closed.operate(2.0, 0.0, i).efficiency;
        prop_assert!(e_closed >= e_open - 1e-9, "{e_closed} vs {e_open}");
    }

    /// Frequency control is monotone in load and clamped to its bounds.
    #[test]
    fn control_monotone(i1 in 0.0..0.2f64, i2 in 0.0..0.2f64) {
        let policy = ControlPolicy::closed_loop();
        let f = |i: f64| policy.frequency(50e6, i, 0.1);
        let (lo, hi) = if i1 < i2 { (i1, i2) } else { (i2, i1) };
        prop_assert!(f(lo) <= f(hi));
        prop_assert!(f(i1) >= 50e6 / 64.0 - 1.0);
        prop_assert!(f(i1) <= 50e6 + 1.0);
    }

    /// Symmetric push-pull: sourcing and sinking the same magnitude give
    /// mirror-image output voltages around the ideal midpoint.
    #[test]
    fn push_pull_symmetry(i in 0.0..0.1f64) {
        let sc = ScConverter::paper_28nm();
        let source = sc.operate(2.0, 0.0, i);
        let sink = sc.operate(2.0, 0.0, -i);
        prop_assert!(((source.v_out + sink.v_out) / 2.0 - 1.0).abs() < 1e-12);
    }
}
