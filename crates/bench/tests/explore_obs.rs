//! End-to-end checks of `explore`'s observability flags: two identical
//! sweep runs must produce byte-identical metric snapshots once the
//! wall-clock fields are zeroed, and `--trace-out` must emit well-formed
//! NDJSON spans plus a collapsed-stack file covering the solve path.

use std::path::{Path, PathBuf};
use std::process::Command;

use vstack_bench::obs::zero_wallclock;
use vstack_engine::json::Json;

fn run_explore(dir: &Path, tag: &str) -> (PathBuf, PathBuf) {
    let trace = dir.join(format!("trace-{tag}.ndjson"));
    let metrics = dir.join(format!("metrics-{tag}.json"));
    let output = Command::new(env!("CARGO_BIN_EXE_explore"))
        .args([
            "--sweep",
            "4",
            "--layers",
            "2",
            "--quick",
            "--imbalance",
            "0.6",
        ])
        .arg("--trace-out")
        .arg(&trace)
        .arg("--metrics-out")
        .arg(&metrics)
        // One worker: span→thread assignment (and hence the NDJSON span
        // order) is deterministic only without pool work-stealing.
        .env("VSTACK_THREADS", "1")
        .output()
        .expect("run explore");
    assert!(
        output.status.success(),
        "explore failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    (trace, metrics)
}

#[test]
fn repeated_sweeps_yield_identical_canonical_snapshots() {
    let dir = std::env::temp_dir().join(format!("vstack-explore-obs-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");

    let (trace_a, metrics_a) = run_explore(&dir, "a");
    let (_, metrics_b) = run_explore(&dir, "b");

    // Identical runs → byte-identical snapshots modulo timestamps.
    let mut snapshots = [metrics_a, metrics_b].map(|p| {
        let text = std::fs::read_to_string(p).expect("read metrics");
        Json::parse(&text).expect("metrics snapshot parses")
    });
    for snapshot in &mut snapshots {
        assert_eq!(
            snapshot.get("schema").and_then(Json::as_str),
            Some("vstack-obs-metrics/1")
        );
        zero_wallclock(snapshot);
    }
    let [a, b] = snapshots;
    assert_eq!(a.emit(), b.emit(), "canonical snapshots must be identical");

    // The sweep actually exercised the stack the counters claim to cover.
    let counters = a.get("counters").expect("counters");
    let counter = |k: &str| counters.get(k).and_then(Json::as_usize).unwrap();
    assert_eq!(counter("engine_requests"), 4);
    assert!(counter("cg_solves") > 0);
    assert!(counter("solver_iterations") > 0);
    assert!(counter("pdn_solves") > 0);

    // NDJSON trace: one well-formed span object per line.
    let ndjson = std::fs::read_to_string(&trace_a).expect("read trace");
    assert!(!ndjson.is_empty(), "trace must record spans");
    let mut names = std::collections::BTreeSet::new();
    for line in ndjson.lines() {
        let span = Json::parse(line).expect("span line parses");
        for field in [
            "name", "stack", "thread", "seq", "depth", "start_us", "dur_us",
        ] {
            assert!(span.get(field).is_some(), "span missing {field}: {line}");
        }
        names.insert(span.get("name").and_then(Json::as_str).unwrap().to_string());
    }
    for expected in ["engine_batch", "scenario_solve", "pdn_solve", "cg_solve"] {
        assert!(names.contains(expected), "no {expected} span in {names:?}");
    }

    // Collapsed stacks: `frame;frame <self_us>` lines, flamegraph-ready,
    // rooted at the engine batch.
    let folded = std::fs::read_to_string(trace_a.with_extension("ndjson.folded"))
        .expect("read folded stacks");
    for line in folded.lines() {
        let (stack, value) = line.rsplit_once(' ').expect("folded line shape");
        assert!(!stack.is_empty());
        value.parse::<u64>().expect("folded value is integer µs");
    }
    assert!(
        folded.lines().any(|l| l.starts_with("engine_batch;")),
        "folded output must nest under engine_batch:\n{folded}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
