//! Rendering helpers shared by the `figN`/`tableN` regeneration binaries.
//!
//! Each binary prints one table or figure of the DAC 2015 paper as plain
//! text rows (series name + points), which is the form the paper's own
//! figures reduce to. Run them with, e.g.:
//!
//! ```text
//! cargo run --release -p vstack-bench --bin fig5a
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod obs;

/// Prints a header line followed by a rule.
pub fn heading(title: &str) {
    println!("{title}");
    println!("{}", "=".repeat(title.len()));
}

/// Prints one labelled numeric series as `label: x=v` pairs.
pub fn print_series<X: std::fmt::Display>(label: &str, points: &[(X, f64)], unit: &str) {
    print!("{label:<42}");
    for (x, v) in points {
        print!(" {x}:{v:.3}{unit}");
    }
    println!();
}

/// Formats a fraction as a percentage with two decimals.
pub fn pct(v: f64) -> String {
    format!("{:.2}%", 100.0 * v)
}

/// Runs one heading-plus-labelled-series figure — the whole body of the
/// `fig5a`/`fig5b` style binaries: print `title`, then every
/// `(label, points)` series through [`print_series`].
pub fn run_series_figure<'a, X: std::fmt::Display + 'a>(
    title: &str,
    series: impl IntoIterator<Item = (&'a str, &'a [(X, f64)])>,
) {
    heading(title);
    for (label, points) in series {
        print_series(label, points, "");
    }
}

/// Prints one imbalance-sweep row (`X%:Y.YY%` pairs) without the trailing
/// newline, the shared row shape of the Fig 6/Fig 8 studies; the caller
/// appends any per-series annotation and finishes the line.
pub fn print_imbalance_row(label: &str, points: impl IntoIterator<Item = (f64, f64)>) {
    print!("{label:<46}");
    for (imbalance, fraction) in points {
        print!(" {:.0}%:{}", 100.0 * imbalance, pct(fraction));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.0123), "1.23%");
    }
}
