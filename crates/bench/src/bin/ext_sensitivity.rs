//! Regenerates the **parameter-sensitivity extension** study: tornado
//! table of the V-S worst IR drop at 65% imbalance under ±30% parameter
//! perturbations.

use vstack::experiments::{ext_sensitivity, Fidelity};
use vstack_bench::{heading, pct};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let obs = vstack_bench::obs::ObsOutputs::from_cli_args();
    heading("Extension — sensitivity tornado, 8-layer V-S @ 65% imbalance");
    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>10}",
        "knob (±30%)", "-30%", "base", "+30%", "swing"
    );
    for row in ext_sensitivity::tornado(Fidelity::Paper, 8, 0.65)? {
        println!(
            "{:<22} {:>10} {:>10} {:>10} {:>10}",
            row.knob.name(),
            pct(row.drop_low),
            pct(row.drop_base),
            pct(row.drop_high),
            pct(row.swing())
        );
    }
    println!(
        "\nReading: converter R_SERIES dominates the V-S noise budget at the\n\
         application-average imbalance — converter design, not TSV or pad\n\
         allocation, is where a V-S designer's effort pays off."
    );
    obs.finish()?;
    Ok(())
}
