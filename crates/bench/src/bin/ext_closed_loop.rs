//! Regenerates the **closed-loop control extension** study: open- vs
//! closed-loop converters across the Fig 8 imbalance sweep (the paper's
//! deferred future work).

use vstack::experiments::{ext_closed_loop, Fidelity};
use vstack_bench::{heading, pct};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let obs = vstack_bench::obs::ObsOutputs::from_cli_args();
    heading("Extension — open-loop vs closed-loop SC control, 8 layers");
    let series = ext_closed_loop::control_policy_study(Fidelity::Paper, 8, &[2, 4, 8])?;
    for s in &series {
        println!("\n{} converters/core:", s.converters_per_core);
        println!(
            "{:>6} {:>10} {:>10} {:>12} {:>12} {:>6}",
            "imb", "open eff", "closed eff", "open drop", "closed drop", "iters"
        );
        for p in &s.points {
            println!(
                "{:>5.0}% {:>10} {:>10} {:>12} {:>12} {:>6}",
                100.0 * p.imbalance,
                pct(p.open_efficiency),
                pct(p.closed_efficiency),
                pct(p.open_ir_drop),
                pct(p.closed_ir_drop),
                p.iterations
            );
        }
    }
    println!(
        "\nReading: frequency modulation scales switching loss with load, so\n\
         closed-loop control recovers the light-imbalance efficiency and\n\
         erases the converter-count penalty of Fig 8 — at the price of a\n\
         higher light-load output impedance (≈5x the IR drop at 10%\n\
         imbalance)."
    );
    obs.finish()?;
    Ok(())
}
