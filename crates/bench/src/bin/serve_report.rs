//! `serve_report` — joins serving-daemon telemetry streams and
//! flight-recorder dumps into one per-phase latency report.
//!
//! Inputs:
//!
//! * `--telemetry FILE` (repeatable) — an NDJSON stream written by
//!   `vstack-serve --telemetry-out` (schema `vstack-telemetry/1`). The
//!   last rollup line of each stream is taken (the rolling 60 s horizon
//!   at shutdown) and its per-shard bucket counts are merged so the
//!   report can re-derive p50/p99/p999 across shards and processes.
//! * `--flight FILE` (repeatable) — a flight-recorder dump (schema
//!   `vstack-flight/1`), as written on worker panic, deadline miss or
//!   shed-rate spike, or on demand via the `flightdump` verb.
//!
//! Output: a per-phase latency table on stdout and, with `--out FILE`,
//! a machine-readable `vstack-serve-report/1` JSON document.
//!
//! ```text
//! cargo run -p vstack-bench --bin serve_report -- \
//!     --telemetry telemetry.ndjson --flight flight-1234-0.ndjson
//! ```

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

use vstack_engine::json::Json;
use vstack_obs::metrics::bucket_quantile;

const PHASES: [&str; 3] = ["total", "queue", "solve"];

struct Config {
    telemetry: Vec<PathBuf>,
    flight: Vec<PathBuf>,
    out: Option<PathBuf>,
}

/// One phase's bucket counts merged across every shard of every stream.
#[derive(Default)]
struct PhaseAgg {
    count: u64,
    sum_us: u64,
    over_slo: u64,
    edges: Vec<u64>,
    buckets: Vec<u64>,
}

impl PhaseAgg {
    fn merge(&mut self, rollup: &Json) -> Result<(), String> {
        let num = |name: &str| -> Result<u64, String> {
            rollup
                .get(name)
                .and_then(Json::as_f64)
                .map(|v| v as u64)
                .ok_or_else(|| format!("phase rollup missing \"{name}\""))
        };
        let ints = |name: &str| -> Result<Vec<u64>, String> {
            rollup
                .get(name)
                .and_then(Json::as_arr)
                .map(|a| a.iter().map(|v| v.as_f64().unwrap_or(0.0) as u64).collect())
                .ok_or_else(|| format!("phase rollup missing \"{name}\""))
        };
        let edges = ints("edges")?;
        let buckets = ints("buckets")?;
        if self.edges.is_empty() {
            self.edges = edges;
            self.buckets = vec![0; self.edges.len() + 1];
        } else if self.edges != edges {
            return Err("telemetry streams use different histogram edges".to_string());
        }
        if buckets.len() != self.buckets.len() {
            return Err("bucket count does not match the edge count".to_string());
        }
        for (acc, b) in self.buckets.iter_mut().zip(&buckets) {
            *acc += b;
        }
        self.count += num("count")?;
        self.sum_us += num("sum_us")?;
        self.over_slo += num("over_slo")?;
        Ok(())
    }

    fn quantile(&self, q: f64) -> u64 {
        bucket_quantile(&self.edges, &self.buckets, self.count, q)
    }

    fn burn_rate(&self, slo_target: f64) -> f64 {
        if self.count == 0 || slo_target >= 1.0 {
            return 0.0;
        }
        (self.over_slo as f64 / self.count as f64) / (1.0 - slo_target)
    }
}

/// Everything pulled out of the flight dumps.
#[derive(Default)]
struct FlightAgg {
    dumps: u64,
    records: u64,
    reasons: Vec<String>,
    outcomes: BTreeMap<String, u64>,
    tiers: BTreeMap<String, u64>,
    /// Trace ids of panicked or deadline-missed requests.
    offending_trace_ids: Vec<String>,
}

fn main() -> ExitCode {
    let config = match parse_args(std::env::args().skip(1)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("serve_report: {e}");
            return ExitCode::from(2);
        }
    };
    match run(&config) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve_report: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(config: &Config) -> Result<(), String> {
    let mut phases: BTreeMap<&str, PhaseAgg> = PHASES
        .iter()
        .map(|&name| (name, PhaseAgg::default()))
        .collect();
    let mut slo: Option<(u64, f64)> = None;
    for path in &config.telemetry {
        let rollup = last_rollup(path)?;
        if slo.is_none() {
            let doc = rollup.get("slo").ok_or("rollup missing \"slo\"")?;
            slo = Some((
                doc.get("threshold_us")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0) as u64,
                doc.get("target").and_then(Json::as_f64).unwrap_or(0.0),
            ));
        }
        let shards = rollup
            .get("shards")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("{}: rollup missing \"shards\"", path.display()))?;
        for shard in shards {
            for phase in PHASES {
                let doc = shard
                    .get(phase)
                    .ok_or_else(|| format!("{}: shard missing \"{phase}\"", path.display()))?;
                phases
                    .get_mut(phase)
                    .expect("phase preseeded")
                    .merge(doc)
                    .map_err(|e| format!("{}: {e}", path.display()))?;
            }
        }
    }

    let mut flight = FlightAgg::default();
    for path in &config.flight {
        read_flight(path, &mut flight)?;
    }

    print_table(&phases, &flight, slo);
    if let Some(out) = &config.out {
        let report = report_json(&phases, &flight, slo, config);
        std::fs::write(out, report.emit() + "\n")
            .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
        eprintln!("serve_report: wrote {}", out.display());
    }
    Ok(())
}

/// The last parseable `vstack-telemetry/1` line of one NDJSON stream.
fn last_rollup(path: &PathBuf) -> Result<Json, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    text.lines()
        .rev()
        .find_map(|line| {
            Json::parse(line).ok().filter(|doc| {
                doc.get("schema").and_then(Json::as_str) == Some("vstack-telemetry/1")
            })
        })
        .ok_or_else(|| format!("{}: no vstack-telemetry/1 rollup line", path.display()))
}

fn read_flight(path: &PathBuf, agg: &mut FlightAgg) -> Result<(), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines
        .next()
        .ok_or_else(|| format!("{}: empty flight dump", path.display()))?;
    let header = Json::parse(header)
        .map_err(|e| format!("{}: header does not parse: {e:?}", path.display()))?;
    if header.get("schema").and_then(Json::as_str) != Some("vstack-flight/1") {
        return Err(format!("{}: not a vstack-flight/1 dump", path.display()));
    }
    agg.dumps += 1;
    let reason = header
        .get("reason")
        .and_then(Json::as_str)
        .unwrap_or("unknown")
        .to_string();
    if !agg.reasons.contains(&reason) {
        agg.reasons.push(reason);
    }
    for line in lines {
        let record = Json::parse(line)
            .map_err(|e| format!("{}: record does not parse: {e:?}", path.display()))?;
        agg.records += 1;
        let outcome = record
            .get("outcome")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string();
        if matches!(outcome.as_str(), "panic" | "deadline_miss") {
            if let Some(id) = record.get("trace_id").and_then(Json::as_str) {
                if !agg.offending_trace_ids.contains(&id.to_string()) {
                    agg.offending_trace_ids.push(id.to_string());
                }
            }
        }
        *agg.outcomes.entry(outcome).or_insert(0) += 1;
        let tier = record
            .get("cache_tier")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string();
        *agg.tiers.entry(tier).or_insert(0) += 1;
    }
    Ok(())
}

fn print_table(phases: &BTreeMap<&str, PhaseAgg>, flight: &FlightAgg, slo: Option<(u64, f64)>) {
    if let Some((threshold_us, target)) = slo {
        println!("slo: {threshold_us} us at target {target}");
    }
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "phase", "count", "p50_us", "p99_us", "p999_us", "burn_rate"
    );
    let target = slo.map_or(0.0, |(_, t)| t);
    for phase in PHASES {
        let agg = &phases[phase];
        println!(
            "{:<12} {:>10} {:>10} {:>10} {:>10} {:>10.3}",
            phase,
            agg.count,
            agg.quantile(0.50),
            agg.quantile(0.99),
            agg.quantile(0.999),
            agg.burn_rate(target),
        );
    }
    if flight.dumps > 0 {
        let outcomes: Vec<String> = flight
            .outcomes
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        println!(
            "flight: {} dump(s), {} record(s), reasons=[{}], outcomes=[{}], offending={}",
            flight.dumps,
            flight.records,
            flight.reasons.join(","),
            outcomes.join(","),
            flight.offending_trace_ids.len(),
        );
    }
}

fn report_json(
    phases: &BTreeMap<&str, PhaseAgg>,
    flight: &FlightAgg,
    slo: Option<(u64, f64)>,
    config: &Config,
) -> Json {
    let target = slo.map_or(0.0, |(_, t)| t);
    let phase_json = |agg: &PhaseAgg| {
        Json::obj(vec![
            ("count", Json::Num(agg.count as f64)),
            ("sum_us", Json::Num(agg.sum_us as f64)),
            ("over_slo", Json::Num(agg.over_slo as f64)),
            ("p50_us", Json::Num(agg.quantile(0.50) as f64)),
            ("p99_us", Json::Num(agg.quantile(0.99) as f64)),
            ("p999_us", Json::Num(agg.quantile(0.999) as f64)),
            ("burn_rate", Json::Num(agg.burn_rate(target))),
        ])
    };
    let count_map = |m: &BTreeMap<String, u64>| {
        Json::Obj(
            m.iter()
                .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                .collect(),
        )
    };
    Json::obj(vec![
        ("schema", Json::Str("vstack-serve-report/1".to_string())),
        (
            "sources",
            Json::obj(vec![
                ("telemetry", Json::Num(config.telemetry.len() as f64)),
                ("flight", Json::Num(config.flight.len() as f64)),
            ]),
        ),
        (
            "slo",
            slo.map_or(Json::Null, |(threshold_us, target)| {
                Json::obj(vec![
                    ("threshold_us", Json::Num(threshold_us as f64)),
                    ("target", Json::Num(target)),
                ])
            }),
        ),
        (
            "phases",
            Json::obj(vec![
                ("total", phase_json(&phases["total"])),
                ("queue_wait", phase_json(&phases["queue"])),
                ("solve", phase_json(&phases["solve"])),
            ]),
        ),
        (
            "flight",
            Json::obj(vec![
                ("dumps", Json::Num(flight.dumps as f64)),
                ("records", Json::Num(flight.records as f64)),
                (
                    "reasons",
                    Json::Arr(
                        flight
                            .reasons
                            .iter()
                            .map(|r| Json::Str(r.clone()))
                            .collect(),
                    ),
                ),
                ("outcomes", count_map(&flight.outcomes)),
                ("cache_tiers", count_map(&flight.tiers)),
                (
                    "offending_trace_ids",
                    Json::Arr(
                        flight
                            .offending_trace_ids
                            .iter()
                            .map(|id| Json::Str(id.clone()))
                            .collect(),
                    ),
                ),
            ]),
        ),
    ])
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Config, String> {
    let mut config = Config {
        telemetry: Vec::new(),
        flight: Vec::new(),
        out: None,
    };
    let mut args = args.peekable();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--telemetry" => config.telemetry.push(PathBuf::from(
                args.next().ok_or("--telemetry needs a path")?,
            )),
            "--flight" => config
                .flight
                .push(PathBuf::from(args.next().ok_or("--flight needs a path")?)),
            "--out" => config.out = Some(PathBuf::from(args.next().ok_or("--out needs a path")?)),
            "--help" | "-h" => {
                return Err(
                    "usage: serve_report [--telemetry FILE]... [--flight FILE]... [--out FILE]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown flag \"{other}\"")),
        }
    }
    if config.telemetry.is_empty() && config.flight.is_empty() {
        return Err("need at least one --telemetry or --flight input".to_string());
    }
    Ok(config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_two_shards_and_rederives_quantiles() {
        let mut agg = PhaseAgg::default();
        let shard = |buckets: [f64; 3]| {
            Json::obj(vec![
                ("count", Json::Num(buckets.iter().sum())),
                ("sum_us", Json::Num(100.0)),
                ("over_slo", Json::Num(1.0)),
                ("edges", Json::Arr(vec![Json::Num(10.0), Json::Num(100.0)])),
                ("buckets", Json::Arr(buckets.map(Json::Num).to_vec())),
            ])
        };
        agg.merge(&shard([3.0, 1.0, 0.0])).unwrap();
        agg.merge(&shard([1.0, 2.0, 1.0])).unwrap();
        assert_eq!(agg.count, 8);
        assert_eq!(agg.buckets, vec![4, 3, 1]);
        assert_eq!(agg.quantile(0.50), 10);
        assert_eq!(agg.quantile(0.99), 200); // overflow bucket: 2x last edge
    }

    #[test]
    fn mismatched_edges_are_rejected() {
        let mut agg = PhaseAgg::default();
        let doc = |edge: f64| {
            Json::obj(vec![
                ("count", Json::Num(0.0)),
                ("sum_us", Json::Num(0.0)),
                ("over_slo", Json::Num(0.0)),
                ("edges", Json::Arr(vec![Json::Num(edge)])),
                ("buckets", Json::Arr(vec![Json::Num(0.0), Json::Num(0.0)])),
            ])
        };
        agg.merge(&doc(10.0)).unwrap();
        assert!(agg.merge(&doc(20.0)).is_err());
    }
}
