//! Regenerates **Fig 6**: maximum on-chip IR drop vs workload imbalance
//! for the 8-layer processor (V-S sweeps + regular reference lines).

use vstack::experiments::{fig6, Fidelity};
use vstack_bench::{heading, pct, print_imbalance_row};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let obs = vstack_bench::obs::ObsOutputs::from_cli_args();
    heading("Fig 6 — max on-chip IR drop (% Vdd) vs workload imbalance, 8 layers");
    let data = fig6::ir_drop_study(Fidelity::Paper, 8)?;
    for s in &data.vs_series {
        print_imbalance_row(
            &format!("3D+V-S, Few TSV, {} converter/core", s.converters_per_core),
            s.points.iter().map(|p| (p.imbalance, p.max_ir_drop_frac)),
        );
        if !s.skipped.is_empty() {
            print!(
                "  [skipped >100 mA: {}]",
                s.skipped
                    .iter()
                    .map(|x| format!("{:.0}%", 100.0 * x))
                    .collect::<Vec<_>>()
                    .join(",")
            );
        }
        println!();
    }
    println!("\nMax IR drop in 3D-only (regular PDN) cases:");
    for (topo, v) in &data.regular_references {
        println!("  {:<12} {}", topo.name(), pct(*v));
    }
    obs.finish()?;
    Ok(())
}
