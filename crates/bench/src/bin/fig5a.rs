//! Regenerates **Fig 5a**: power-supply TSV array EM-free MTTF vs layer
//! count (normalized to the 2-layer V-S PDN).

use vstack::experiments::{fig5, Fidelity};
use vstack_bench::run_series_figure;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let obs = vstack_bench::obs::ObsOutputs::from_cli_args();
    let data = fig5::tsv_lifetimes(Fidelity::Paper)?;
    run_series_figure(
        "Fig 5a — normalized TSV EM-free MTTF vs stacked layers",
        data.series
            .iter()
            .map(|s| (s.label.as_str(), s.points.as_slice())),
    );
    obs.finish()?;
    Ok(())
}
