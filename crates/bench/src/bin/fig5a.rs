//! Regenerates **Fig 5a**: power-supply TSV array EM-free MTTF vs layer
//! count (normalized to the 2-layer V-S PDN).

use vstack::experiments::{fig5, Fidelity};
use vstack_bench::{heading, print_series};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    heading("Fig 5a — normalized TSV EM-free MTTF vs stacked layers");
    let data = fig5::tsv_lifetimes(Fidelity::Paper)?;
    for s in &data.series {
        print_series(&s.label, &s.points, "");
    }
    Ok(())
}
