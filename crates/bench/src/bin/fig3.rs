//! Regenerates **Fig 3**: SC-converter compact-model validation against
//! the detailed switched-netlist simulation (Spectre substitute).

use vstack_bench::heading;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let obs = vstack_bench::obs::ObsOutputs::from_cli_args();
    heading("Fig 3a — closed-loop control: efficiency vs load current");
    println!(
        "{:>10} {:>12} {:>12} {:>14} {:>14}",
        "load (mA)", "model eff", "sim eff", "model Vdrop", "sim Vdrop"
    );
    for r in vstack::experiments::fig3::closed_loop_validation()? {
        println!(
            "{:>10.1} {:>11.1}% {:>11.1}% {:>11.1} mV {:>11.1} mV",
            r.load_ma,
            100.0 * r.model_efficiency,
            100.0 * r.sim_efficiency,
            r.model_vdrop_mv,
            r.sim_vdrop_mv
        );
    }

    println!();
    heading("Fig 3b — open-loop control: efficiency and V_drop vs load current");
    println!(
        "{:>10} {:>12} {:>12} {:>14} {:>14}",
        "load (mA)", "model eff", "sim eff", "model Vdrop", "sim Vdrop"
    );
    for r in vstack::experiments::fig3::open_loop_validation()? {
        println!(
            "{:>10.1} {:>11.1}% {:>11.1}% {:>11.1} mV {:>11.1} mV",
            r.load_ma,
            100.0 * r.model_efficiency,
            100.0 * r.sim_efficiency,
            r.model_vdrop_mv,
            r.sim_vdrop_mv
        );
    }
    obs.finish()?;
    Ok(())
}
