//! Regenerates **Table 2**: TSV configurations used in the study.

use vstack::experiments::tables;
use vstack::pdn::PdnParams;
use vstack_bench::heading;

fn main() {
    heading("Table 2 — TSV configurations");
    println!(
        "{:<14} {:>18} {:>16} {:>18}",
        "topology", "eff. pitch (um)", "TSVs per core", "area overhead"
    );
    for row in tables::table2(&PdnParams::paper_defaults()) {
        println!(
            "{:<14} {:>18.0} {:>16} {:>17.1}%",
            row.topology.name(),
            row.effective_pitch_um,
            row.tsvs_per_core,
            100.0 * row.area_overhead
        );
    }
}
