//! Regenerates **Fig 7**: Parsec per-application power distributions
//! (box-plot five-number summaries) and the derived imbalance statistics.

use vstack::experiments::fig7;
use vstack_bench::heading;

fn main() {
    let obs = vstack_bench::obs::ObsOutputs::from_cli_args();
    heading("Fig 7 — Parsec 16-core layer power distributions (W)");
    println!(
        "{:<16} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10}",
        "application", "min", "q25", "median", "q75", "max", "max-imb"
    );
    let data = fig7::workload_distributions();
    for r in &data.rows {
        println!(
            "{:<16} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>9.0}%",
            r.app.name(),
            r.power_w.min,
            r.power_w.q25,
            r.power_w.median,
            r.power_w.q75,
            r.power_w.max,
            100.0 * r.max_imbalance
        );
    }
    println!(
        "\naverage per-app max imbalance: {:.0}%   global max imbalance: {:.0}%",
        100.0 * data.average_max_imbalance,
        100.0 * data.global_max_imbalance
    );
    obs.finish().expect("write obs outputs");
}
