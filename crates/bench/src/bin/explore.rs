//! Interactive design-point explorer: solve any regular or voltage-stacked
//! configuration from the command line.
//!
//! ```text
//! cargo run --release -p vstack-bench --bin explore -- \
//!     --topology vs --layers 8 --tsv few --converters 8 --imbalance 0.65
//! ```
//!
//! Flags (all optional):
//!
//! * `--topology vs|regular` (default `vs`)
//! * `--layers N` (default 8)
//! * `--tsv dense|sparse|few` (default `few`)
//! * `--power-c4 F` pad fraction (default 0.25 for V-S, 0.5 for regular)
//! * `--converters K` per core (default 8; V-S only)
//! * `--imbalance X` 0–1 (default 0.65; V-S only — regular worst case is
//!   full activity)
//! * `--closed-loop` use frequency-modulated converters
//! * `--quick` coarse electrical grid

use vstack::em_study::paper_em_lifetimes;
use vstack::pdn::TsvTopology;
use vstack::sc::compact::ScConverter;
use vstack::scenario::DesignScenario;

#[derive(Debug)]
struct Args {
    topology: String,
    layers: usize,
    tsv: TsvTopology,
    power_c4: Option<f64>,
    converters: usize,
    imbalance: f64,
    closed_loop: bool,
    quick: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        topology: "vs".into(),
        layers: 8,
        tsv: TsvTopology::Few,
        power_c4: None,
        converters: 8,
        imbalance: 0.65,
        closed_loop: false,
        quick: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("flag {name} needs a value"))
        };
        match flag.as_str() {
            "--topology" => args.topology = value("--topology")?,
            "--layers" => {
                args.layers = value("--layers")?
                    .parse()
                    .map_err(|e| format!("--layers: {e}"))?
            }
            "--tsv" => {
                args.tsv = match value("--tsv")?.as_str() {
                    "dense" => TsvTopology::Dense,
                    "sparse" => TsvTopology::Sparse,
                    "few" => TsvTopology::Few,
                    other => return Err(format!("unknown --tsv {other}")),
                }
            }
            "--power-c4" => {
                args.power_c4 = Some(
                    value("--power-c4")?
                        .parse()
                        .map_err(|e| format!("--power-c4: {e}"))?,
                )
            }
            "--converters" => {
                args.converters = value("--converters")?
                    .parse()
                    .map_err(|e| format!("--converters: {e}"))?
            }
            "--imbalance" => {
                args.imbalance = value("--imbalance")?
                    .parse()
                    .map_err(|e| format!("--imbalance: {e}"))?
            }
            "--closed-loop" => args.closed_loop = true,
            "--quick" => args.quick = true,
            "--help" | "-h" => {
                println!("see module docs: cargo doc -p vstack-bench --bin explore");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args().map_err(|e| format!("{e} (try --help)"))?;

    let mut scenario = DesignScenario::paper_baseline()
        .layers(args.layers)
        .tsv_topology(args.tsv)
        .converters_per_core(args.converters);
    if args.quick {
        scenario = scenario.coarse_grid();
    }
    if args.closed_loop {
        scenario = scenario.converter(ScConverter::paper_28nm_closed_loop());
    }

    match args.topology.as_str() {
        "vs" => {
            scenario = scenario.power_c4_fraction(args.power_c4.unwrap_or(0.25));
            let sol = scenario.solve_voltage_stacked(args.imbalance)?;
            let life = paper_em_lifetimes(&sol);
            println!(
                "V-S PDN: {} layers, {}, {} conv/core, {:.0}% imbalance{}",
                args.layers,
                args.tsv.name(),
                args.converters,
                100.0 * args.imbalance,
                if args.closed_loop {
                    ", closed loop"
                } else {
                    ""
                },
            );
            println!(
                "  max IR drop      : {:.2}% Vdd",
                100.0 * sol.max_ir_drop_frac
            );
            println!(
                "  mean IR drop     : {:.2}% Vdd",
                100.0 * sol.mean_ir_drop_frac
            );
            println!("  efficiency       : {:.1}%", 100.0 * sol.efficiency());
            println!(
                "  converters       : {} total, {} overloaded",
                sol.converter_currents.len(),
                sol.overloaded_converters
            );
            println!("  C4 EM lifetime   : {:.2e} h", life.c4_hours);
            println!("  TSV EM lifetime  : {:.2e} h", life.tsv_hours);
            println!(
                "  area overhead    : {:.1}% per core",
                100.0 * scenario.vs_area_overhead_per_core()
            );
        }
        "regular" => {
            scenario = scenario.power_c4_fraction(args.power_c4.unwrap_or(0.5));
            let sol = scenario.solve_regular_peak()?;
            let life = paper_em_lifetimes(&sol);
            println!(
                "Regular PDN: {} layers, {}, all layers active",
                args.layers,
                args.tsv.name(),
            );
            println!(
                "  max IR drop      : {:.2}% Vdd",
                100.0 * sol.max_ir_drop_frac
            );
            println!(
                "  mean IR drop     : {:.2}% Vdd",
                100.0 * sol.mean_ir_drop_frac
            );
            println!(
                "  max pad current  : {:.1} mA",
                1000.0 * sol.vdd_c4.max_current()
            );
            println!(
                "  max TSV current  : {:.1} mA",
                1000.0 * sol.tsv.max_current()
            );
            println!("  C4 EM lifetime   : {:.2e} h", life.c4_hours);
            println!("  TSV EM lifetime  : {:.2e} h", life.tsv_hours);
        }
        other => return Err(format!("unknown --topology {other} (vs|regular)").into()),
    }
    Ok(())
}
