//! Interactive design-point explorer: solve any regular or voltage-stacked
//! configuration from the command line.
//!
//! Every query is routed through the `vstack-engine` scenario-query
//! engine, so repeated points — within one run via `--sweep`, or across
//! runs via `--cache-dir` — are cache hits instead of re-solves. The run
//! ends with the engine's hit/miss summary.
//!
//! ```text
//! cargo run --release -p vstack-bench --bin explore -- \
//!     --topology vs --layers 8 --tsv few --converters 8 --imbalance 0.65
//! ```
//!
//! Flags (all optional):
//!
//! * `--topology vs|regular` (default `vs`)
//! * `--layers N` (default 8)
//! * `--tsv dense|sparse|few` (default `few`)
//! * `--power-c4 F` pad fraction (default 0.25 for V-S, 0.5 for regular)
//! * `--converters K` per core (default 8; V-S only)
//! * `--imbalance X` 0–1 (default 0.65; V-S only — regular worst case is
//!   full activity)
//! * `--closed-loop` use frequency-modulated converters
//! * `--quick` coarse electrical grid
//! * `--sweep N` solve N imbalance points from 0 to `--imbalance`
//!   (V-S only) instead of a single point
//! * `--cache-dir DIR` persist results across runs (a second identical
//!   run is served from disk)
//! * `--trace-out PATH` record spans for the whole run; writes NDJSON at
//!   PATH and collapsed stacks at PATH.folded (flamegraph input)
//! * `--metrics-out PATH` write the metrics-registry snapshot on exit

use std::path::PathBuf;

use vstack_bench::obs::ObsOutputs;

use vstack::pdn::TsvTopology;
use vstack_engine::{Engine, EngineConfig, ScenarioRequest, SolveSummary};

#[derive(Debug)]
struct Args {
    topology: String,
    layers: usize,
    tsv: TsvTopology,
    power_c4: Option<f64>,
    converters: usize,
    imbalance: f64,
    closed_loop: bool,
    quick: bool,
    sweep: Option<usize>,
    cache_dir: Option<PathBuf>,
    trace_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        topology: "vs".into(),
        layers: 8,
        tsv: TsvTopology::Few,
        power_c4: None,
        converters: 8,
        imbalance: 0.65,
        closed_loop: false,
        quick: false,
        sweep: None,
        cache_dir: None,
        trace_out: None,
        metrics_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("flag {name} needs a value"))
        };
        match flag.as_str() {
            "--topology" => args.topology = value("--topology")?,
            "--layers" => {
                args.layers = value("--layers")?
                    .parse()
                    .map_err(|e| format!("--layers: {e}"))?
            }
            "--tsv" => {
                args.tsv = match value("--tsv")?.as_str() {
                    "dense" => TsvTopology::Dense,
                    "sparse" => TsvTopology::Sparse,
                    "few" => TsvTopology::Few,
                    other => return Err(format!("unknown --tsv {other}")),
                }
            }
            "--power-c4" => {
                args.power_c4 = Some(
                    value("--power-c4")?
                        .parse()
                        .map_err(|e| format!("--power-c4: {e}"))?,
                )
            }
            "--converters" => {
                args.converters = value("--converters")?
                    .parse()
                    .map_err(|e| format!("--converters: {e}"))?
            }
            "--imbalance" => {
                args.imbalance = value("--imbalance")?
                    .parse()
                    .map_err(|e| format!("--imbalance: {e}"))?
            }
            "--closed-loop" => args.closed_loop = true,
            "--quick" => args.quick = true,
            "--sweep" => {
                args.sweep = Some(
                    value("--sweep")?
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 2)
                        .ok_or("--sweep needs an integer >= 2")?,
                )
            }
            "--cache-dir" => args.cache_dir = Some(PathBuf::from(value("--cache-dir")?)),
            "--trace-out" => args.trace_out = Some(PathBuf::from(value("--trace-out")?)),
            "--metrics-out" => args.metrics_out = Some(PathBuf::from(value("--metrics-out")?)),
            "--help" | "-h" => {
                println!("see module docs: cargo doc -p vstack-bench --bin explore");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

/// The engine request for one (possibly sweep-overridden) imbalance.
fn request_for(args: &Args, imbalance: f64) -> Result<ScenarioRequest, String> {
    let mut req = match args.topology.as_str() {
        "vs" => ScenarioRequest::voltage_stacked(args.layers, imbalance)
            .power_c4(args.power_c4.unwrap_or(0.25))
            .converters(args.converters)
            .closed_loop(args.closed_loop),
        "regular" => ScenarioRequest::regular(args.layers).power_c4(args.power_c4.unwrap_or(0.5)),
        other => return Err(format!("unknown --topology {other} (vs|regular)")),
    };
    req = req.tsv(args.tsv);
    if args.quick {
        req = req.quick();
    }
    Ok(req)
}

fn print_point(args: &Args, req: &ScenarioRequest, s: &SolveSummary) {
    match args.topology.as_str() {
        "vs" => {
            println!(
                "V-S PDN: {} layers, {}, {} conv/core, {:.0}% imbalance{}",
                args.layers,
                args.tsv.name(),
                args.converters,
                100.0 * req.imbalance,
                if args.closed_loop {
                    ", closed loop"
                } else {
                    ""
                },
            );
            println!(
                "  max IR drop      : {:.2}% Vdd",
                100.0 * s.max_ir_drop_frac
            );
            println!(
                "  mean IR drop     : {:.2}% Vdd",
                100.0 * s.mean_ir_drop_frac
            );
            println!("  efficiency       : {:.1}%", 100.0 * s.efficiency);
            println!("  overloaded conv  : {}", s.overloaded_converters);
            println!("  C4 EM lifetime   : {:.2e} h", s.em_c4_hours);
            println!("  TSV EM lifetime  : {:.2e} h", s.em_tsv_hours);
            println!(
                "  area overhead    : {:.1}% per core",
                100.0 * req.to_scenario().vs_area_overhead_per_core()
            );
        }
        _ => {
            println!(
                "Regular PDN: {} layers, {}, all layers active",
                args.layers,
                args.tsv.name(),
            );
            println!(
                "  max IR drop      : {:.2}% Vdd",
                100.0 * s.max_ir_drop_frac
            );
            println!(
                "  mean IR drop     : {:.2}% Vdd",
                100.0 * s.mean_ir_drop_frac
            );
            println!("  C4 EM lifetime   : {:.2e} h", s.em_c4_hours);
            println!("  TSV EM lifetime  : {:.2e} h", s.em_tsv_hours);
        }
    }
}

fn print_cache_summary(engine: &Engine) {
    let s = engine.stats();
    println!();
    println!(
        "engine: {} request(s) — {} hit(s) ({} memory, {} disk, {} dedup), \
         {} warm solve(s), {} cold solve(s); hit rate {:.0}%",
        s.requests,
        s.hits(),
        s.memory_hits,
        s.disk_hits,
        s.deduped,
        s.warm_solves,
        s.cold_solves,
        100.0 * s.hit_rate(),
    );
    println!(
        "        {} solver iteration(s), {:.1} ms in solves ({:.1} ms preconditioner setup)",
        s.solver_iterations,
        s.solve_time_us as f64 / 1000.0,
        s.solver_setup_us as f64 / 1000.0
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args().map_err(|e| format!("{e} (try --help)"))?;
    let obs = ObsOutputs::new(args.trace_out.clone(), args.metrics_out.clone());
    let mut engine = Engine::new(EngineConfig {
        cache_dir: args.cache_dir.clone(),
        ..EngineConfig::default()
    })?;

    match args.sweep {
        None => {
            let req = request_for(&args, args.imbalance)?;
            let result = engine.query(&req).map_err(|e| e.to_string())?;
            print_point(&args, &req, &result.summary);
            println!(
                "  query            : {}{} fp {}",
                result.outcome.label(),
                result
                    .outcome
                    .source()
                    .map(|s| format!(" ({s})"))
                    .unwrap_or_default(),
                ScenarioRequest::format_fingerprint(result.fingerprint),
            );
        }
        Some(points) => {
            if args.topology != "vs" {
                return Err("--sweep requires --topology vs".into());
            }
            let requests: Vec<ScenarioRequest> = (0..points)
                .map(|i| {
                    let x = args.imbalance * i as f64 / (points - 1) as f64;
                    request_for(&args, x)
                })
                .collect::<Result<_, _>>()?;
            println!(
                "V-S imbalance sweep: {} points over 0–{:.0}%, {} layers, {}",
                points,
                100.0 * args.imbalance,
                args.layers,
                args.tsv.name(),
            );
            println!("  imbalance   max IR    mean IR   efficiency   outcome");
            for (req, result) in requests.iter().zip(engine.query_batch(&requests)) {
                let result = result.map_err(|e| e.to_string())?;
                let s = &result.summary;
                println!(
                    "  {:>7.1}%   {:>6.2}%   {:>6.2}%   {:>8.1}%   {}{}",
                    100.0 * req.imbalance,
                    100.0 * s.max_ir_drop_frac,
                    100.0 * s.mean_ir_drop_frac,
                    100.0 * s.efficiency,
                    result.outcome.label(),
                    result
                        .outcome
                        .source()
                        .map(|s| format!(" ({s})"))
                        .unwrap_or_default(),
                );
            }
        }
    }

    print_cache_summary(&engine);
    engine.flush()?;
    obs.finish()?;
    Ok(())
}
