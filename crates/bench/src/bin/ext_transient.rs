//! Regenerates the **load-step transient extension** study: di/dt
//! response of the V-S PDN when workload imbalance appears, vs decap
//! budget and converter count, with a regular-PDN reference.

use vstack::experiments::{ext_transient, Fidelity};
use vstack_bench::{heading, pct};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let obs = vstack_bench::obs::ObsOutputs::from_cli_args();
    heading("Extension — V-S load-step transient (balanced → 65% imbalance, 8 layers)");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10} {:>11} {:>12}",
        "conv/core", "decap", "initial", "peak", "final", "overshoot", "settle"
    );
    let points =
        ext_transient::vs_step_study(Fidelity::Paper, 8, 0.65, &[4, 8], &[10e-9, 40e-9, 100e-9])?;
    for p in &points {
        println!(
            "{:>8} {:>8.0}nF {:>10} {:>10} {:>10} {:>11} {:>10}",
            p.converters_per_core,
            p.decap_per_core_f * 1e9,
            pct(p.initial_drop),
            pct(p.peak_drop),
            pct(p.final_drop),
            pct(p.overshoot),
            p.settling_time_s
                .map(|t| format!("{:.0} ns", t * 1e9))
                .unwrap_or_else(|| "—".into()),
        );
    }
    let reg = ext_transient::regular_step_reference(Fidelity::Paper, 8, 40e-9)?;
    println!(
        "\nRegular PDN reference (30%→100% activity step, Dense TSV, 40 nF):\n\
         initial {} → peak {} → final {}, settle {}",
        pct(reg.initial_drop),
        pct(reg.peak_drop),
        pct(reg.final_drop),
        reg.settling_time_s
            .map(|t| format!("{:.0} ns", t * 1e9))
            .unwrap_or_else(|| "—".into()),
    );
    obs.finish()?;
    Ok(())
}
