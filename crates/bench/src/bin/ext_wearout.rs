//! Regenerates the **fault-injection wearout extension** study: the EM
//! feedback loop (solve → Black's-equation TTFs → kill the earliest-failure
//! quantile → warm-started resilient re-solve) played forward on the
//! regular and voltage-stacked topologies, reporting IR-drop-vs-faults
//! degradation curves and every escalation-ladder fallback encountered.

use vstack::experiments::ext_wearout::{self, WearoutConfig, WearoutOutcome};
use vstack::experiments::Fidelity;
use vstack_bench::{heading, pct};

fn outcome_label(o: &WearoutOutcome) -> String {
    match o {
        WearoutOutcome::Disconnected {
            round,
            floating_nodes,
        } => format!("DISCONNECTED at round {round} ({floating_nodes} floating nodes)"),
        WearoutOutcome::DropLimitExceeded { round } => {
            format!("drop limit exceeded at round {round}")
        }
        WearoutOutcome::SolverExhausted { round, error } => {
            format!("electrically dead at round {round} (ladder exhausted: {error})")
        }
        WearoutOutcome::Survived => "survived the round budget".into(),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let obs = vstack_bench::obs::ObsOutputs::from_cli_args();
    heading("Extension — EM wearout feedback loop (5%/round earliest-failure kills)");
    let config = WearoutConfig {
        fidelity: Fidelity::Paper,
        ..WearoutConfig::default()
    };
    let curves = ext_wearout::wearout_comparison(&config, &[4, 8])?;
    for c in &curves {
        println!(
            "\n{} PDN, {} layers — {}",
            c.label,
            c.n_layers,
            outcome_label(&c.outcome)
        );
        println!(
            "{:>6} {:>12} {:>12} {:>12} {:>14} {:>8}",
            "round", "pads failed", "TSVs failed", "max drop", "min TTF (h)", "rescued"
        );
        for p in &c.points {
            println!(
                "{:>6} {:>12} {:>12} {:>12} {:>14.3e} {:>8}",
                p.round,
                pct(p.fraction_pads_failed),
                p.failed_tsvs,
                pct(p.max_ir_drop_frac),
                p.earliest_pad_ttf_hours,
                if p.rescued { "yes" } else { "no" },
            );
        }
        println!(
            "degradation slope (drop per pad-fraction): {:.4}",
            c.degradation_slope()
        );
        for trail in &c.fallback_trails {
            println!("  fallback trail: {trail}");
        }
    }

    println!();
    for n in [4usize, 8] {
        let reg = curves
            .iter()
            .find(|c| c.label == "regular" && c.n_layers == n)
            .unwrap();
        let vs = curves
            .iter()
            .find(|c| c.label == "voltage-stacked" && c.n_layers == n)
            .unwrap();
        println!(
            "{n} layers: V-S degradation slope {:.4} vs regular {:.4} ({:.1}× more graceful)",
            vs.degradation_slope(),
            reg.degradation_slope(),
            reg.degradation_slope() / vs.degradation_slope().max(f64::MIN_POSITIVE),
        );
    }
    obs.finish()?;
    Ok(())
}
