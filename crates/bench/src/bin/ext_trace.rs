//! Regenerates the **trace-driven noise extension** study: replays
//! phase-correlated Parsec traces through the 8-layer V-S PDN.

use vstack::experiments::{ext_trace, Fidelity};
use vstack::power::workload::ParsecApp;
use vstack_bench::{heading, pct};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let obs = vstack_bench::obs::ObsOutputs::from_cli_args();
    heading("Extension — trace-driven V-S noise (200 windows, 8 conv/core, 8 layers)");
    let schedules: [(&str, [ParsecApp; 8]); 3] = [
        ("same-app (blackscholes)", [ParsecApp::Blackscholes; 8]),
        (
            "mixed compute/memory",
            [
                ParsecApp::Swaptions,
                ParsecApp::Canneal,
                ParsecApp::Swaptions,
                ParsecApp::Canneal,
                ParsecApp::Swaptions,
                ParsecApp::Canneal,
                ParsecApp::Swaptions,
                ParsecApp::Canneal,
            ],
        ),
        (
            "mixed bursty",
            [
                ParsecApp::X264,
                ParsecApp::Ferret,
                ParsecApp::Dedup,
                ParsecApp::Vips,
                ParsecApp::X264,
                ParsecApp::Ferret,
                ParsecApp::Dedup,
                ParsecApp::Vips,
            ],
        ),
    ];
    println!(
        "{:<26} {:>10} {:>10} {:>14} {:>12}",
        "schedule", "mean drop", "worst", ">3% windows", "overloads"
    );
    for (name, apps) in &schedules {
        let t = ext_trace::replay_trace(Fidelity::Paper, apps, 200, 8)?;
        println!(
            "{:<26} {:>10} {:>10} {:>13.1}% {:>12}",
            name,
            pct(t.mean_drop()),
            pct(t.worst_drop()),
            100.0 * t.exceedance(0.03),
            t.overloaded_windows
        );
    }
    println!(
        "\nReading: static worst-case analysis (Fig 6) bounds the replayed\n\
         traces, but typical windows sit far below it — and same-app\n\
         scheduling keeps even the worst window near the balanced floor."
    );
    obs.finish()?;
    Ok(())
}
