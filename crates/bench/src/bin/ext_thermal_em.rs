//! Regenerates the **thermal-coupling lifetime extension** study: the
//! Fig 5-style V-S vs regular EM comparison re-run through the
//! thermal–EM–IR fixed point, reporting per-point convergence, stack
//! temperatures and the coupled-vs-uncoupled MTTF delta.
//!
//! Flags (in addition to the shared `--trace-out`/`--metrics-out`):
//!
//! * `--quick` — coarse-grid fidelity for CI smoke runs.
//! * `--ndjson-out PATH` — write one JSON record per design point.
//!
//! Exits nonzero if any point fails to converge — the coupled driver is
//! expected to reach its fixed point on every paper-scale grid.

use std::io::Write as _;

use vstack::experiments::ext_thermal_em::{thermal_em_comparison, ThermalEmConfig};
use vstack::experiments::Fidelity;
use vstack_bench::{heading, pct};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let obs = vstack_bench::obs::ObsOutputs::from_cli_args();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let ndjson_out = args
        .iter()
        .position(|a| a == "--ndjson-out")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let config = ThermalEmConfig {
        fidelity: if quick {
            Fidelity::Quick
        } else {
            Fidelity::Paper
        },
        ..ThermalEmConfig::default()
    };
    let layer_counts: &[usize] = if quick { &[2, 8] } else { &[2, 4, 8] };

    heading("Extension — EM lifetime under thermal-IR coupling (damped fixed point)");
    let points = thermal_em_comparison(&config, layer_counts)?;
    println!(
        "{:<16} {:>6} {:>6} {:>9} {:>9} {:>13} {:>13} {:>10} {:>10}",
        "topology",
        "layers",
        "iters",
        "peak °C",
        "L0 °C",
        "C4 MTTF (h)",
        "@80°C (h)",
        "C4 Δ",
        "TSV Δ"
    );
    for p in &points {
        println!(
            "{:<16} {:>6} {:>6} {:>9.1} {:>9.1} {:>13.3e} {:>13.3e} {:>10} {:>10}",
            p.label,
            p.n_layers,
            p.iterations,
            p.peak_temperature_c,
            p.bottom_layer_c,
            p.em_coupled.c4_hours,
            p.em_uncoupled.c4_hours,
            pct(p.c4_coupling_delta()),
            pct(p.tsv_coupling_delta()),
        );
    }

    if let Some(path) = ndjson_out {
        let mut f = std::fs::File::create(&path)?;
        for p in &points {
            writeln!(
                f,
                "{{\"study\":\"ext_thermal_em\",\"label\":\"{}\",\"layers\":{},\
                 \"iterations\":{},\"converged\":{},\"residual_c\":{:e},\
                 \"peak_c\":{:.3},\"bottom_c\":{:.3},\
                 \"em_c4_coupled_h\":{:e},\"em_c4_uncoupled_h\":{:e},\
                 \"em_tsv_coupled_h\":{:e},\"em_tsv_uncoupled_h\":{:e},\
                 \"c4_delta\":{:e},\"tsv_delta\":{:e}}}",
                p.label,
                p.n_layers,
                p.iterations,
                p.converged,
                p.residual_c,
                p.peak_temperature_c,
                p.bottom_layer_c,
                p.em_coupled.c4_hours,
                p.em_uncoupled.c4_hours,
                p.em_coupled.tsv_hours,
                p.em_uncoupled.tsv_hours,
                p.c4_coupling_delta(),
                p.tsv_coupling_delta(),
            )?;
        }
        eprintln!("ndjson: wrote {path}");
    }

    let unconverged: Vec<_> = points.iter().filter(|p| !p.converged).collect();
    obs.finish()?;
    if !unconverged.is_empty() {
        for p in &unconverged {
            eprintln!(
                "FAIL: {} {}-layer did not converge (residual {:.3} °C)",
                p.label, p.n_layers, p.residual_c
            );
        }
        std::process::exit(1);
    }
    Ok(())
}
