//! Regenerates **Fig 8**: system power efficiency vs workload imbalance
//! for the 8-layer processor.

use vstack::experiments::{fig8, Fidelity};
use vstack_bench::{heading, pct};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    heading("Fig 8 — system power efficiency vs workload imbalance, 8 layers");
    let data = fig8::efficiency_study(Fidelity::Paper, 8)?;
    for s in data.vs_series.iter().chain([&data.regular_sc_reference]) {
        print!("{:<46}", s.label);
        for p in &s.points {
            print!(" {:.0}%:{}", 100.0 * p.imbalance, pct(p.efficiency));
        }
        println!();
    }
    Ok(())
}
