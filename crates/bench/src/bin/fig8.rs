//! Regenerates **Fig 8**: system power efficiency vs workload imbalance
//! for the 8-layer processor.

use vstack::experiments::{fig8, Fidelity};
use vstack_bench::{heading, print_imbalance_row};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let obs = vstack_bench::obs::ObsOutputs::from_cli_args();
    heading("Fig 8 — system power efficiency vs workload imbalance, 8 layers");
    let data = fig8::efficiency_study(Fidelity::Paper, 8)?;
    for s in data.vs_series.iter().chain([&data.regular_sc_reference]) {
        print_imbalance_row(
            &s.label,
            s.points.iter().map(|p| (p.imbalance, p.efficiency)),
        );
        println!();
    }
    obs.finish()?;
    Ok(())
}
