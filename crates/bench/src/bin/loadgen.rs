//! `loadgen` — overload benchmark for the serving daemon.
//!
//! Starts an in-process `vstack-serve` daemon on a loopback port,
//! calibrates its single-shard service time, then drives an open-loop
//! paced flood at `--overload` times the calibrated capacity with every
//! request unique (no cache hits). Reports accepted-latency percentiles
//! (p50/p99/p999), a per-phase breakdown (queue wait vs. solve, from the
//! reply `telemetry` blocks), the shed rate, deadline misses and the
//! post-flood recovery time into `BENCH_serve.json`
//! (schema `vstack-bench-serve/2`).
//!
//! Invariants checked while measuring (the run fails on violation):
//!
//! * zero hangs — every request gets a structured answer within its
//!   deadline plus a grace window;
//! * every `overloaded` rejection carries `retry_after_ms`;
//! * every reply carries a `telemetry` block whose phase times sum to
//!   no more than the client-observed wall time.
//!
//! ```text
//! cargo run --release -p vstack-bench --bin loadgen -- --quick
//! ```
//!
//! Flags: `--quick` (CI-sized run; also via `VSTACK_BENCH_QUICK=1`),
//! `--overload F` (default 2.0), `--shards N` (default 2),
//! `--queue-depth N` (default 4), `--deadline-ms N` (default 2000),
//! `--out FILE` (default `BENCH_serve.json`).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use vstack_engine::json::Json;
use vstack_engine::server::{Bind, Daemon, DaemonConfig, ShardConfig};

struct Config {
    quick: bool,
    overload: f64,
    shards: usize,
    queue_depth: usize,
    deadline_ms: u64,
    out: PathBuf,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            quick: std::env::var("VSTACK_BENCH_QUICK").is_ok_and(|v| v == "1"),
            overload: 2.0,
            shards: 2,
            queue_depth: 4,
            deadline_ms: 2_000,
            out: PathBuf::from("BENCH_serve.json"),
        }
    }
}

/// One request's fate, as seen by a client.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Fate {
    Ok,
    Shed,
    ShedWithoutRetryHint,
    DeadlineExceeded,
    OtherError,
    Hang,
}

struct Sample {
    fate: Fate,
    latency_us: u64,
    /// Queue-wait phase from the reply `telemetry` block (0 if absent).
    queue_wait_us: u64,
    /// Solve phase from the reply `telemetry` block (0 if absent).
    solve_us: u64,
    /// Reply carried a well-formed `telemetry` block with a trace id.
    telemetry_ok: bool,
    /// `queue_wait_us + solve_us` exceeded the client-observed wall time.
    phase_overrun: bool,
}

impl Sample {
    /// Classifies one reply and pulls its phase breakdown out of the
    /// server-side `telemetry` block. Hangs have no reply, so no block.
    fn from_reply(fate: Fate, latency_us: u64, reply: Option<&Json>) -> Sample {
        let telemetry = reply.and_then(|r| r.get("telemetry"));
        let phase = |name: &str| {
            telemetry
                .and_then(|t| t.get(name))
                .and_then(Json::as_f64)
                .map(|v| v as u64)
        };
        let queue_wait_us = phase("queue_wait_us").unwrap_or(0);
        let solve_us = phase("solve_us").unwrap_or(0);
        let telemetry_ok = fate == Fate::Hang
            || telemetry
                .and_then(|t| t.get("trace_id"))
                .and_then(Json::as_str)
                .is_some_and(|id| id.len() == 16 && id != "0000000000000000");
        Sample {
            fate,
            latency_us,
            queue_wait_us,
            solve_us,
            telemetry_ok,
            phase_overrun: queue_wait_us + solve_us > latency_us,
        }
    }
}

fn main() -> ExitCode {
    let config = match parse_args(std::env::args().skip(1)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("loadgen: {e}");
            return ExitCode::from(2);
        }
    };

    let daemon = match Daemon::start(DaemonConfig {
        bind: Bind::Tcp("127.0.0.1:0".to_string()),
        shard: ShardConfig {
            shards: config.shards,
            queue_capacity: config.queue_depth,
            lru_capacity: 64,
            cache_dir: None,
            warm_start: true,
            ..ShardConfig::default()
        },
        default_deadline_ms: config.deadline_ms,
        max_deadline_ms: 300_000,
        ..DaemonConfig::default()
    }) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("loadgen: daemon start failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = daemon.tcp_addr().expect("tcp bind");

    // Phase 1: calibrate the per-solve service time on an idle daemon.
    let calibration_n = if config.quick { 6 } else { 24 };
    let mut conn = connect(addr, config.deadline_ms);
    let cal_started = Instant::now();
    for i in 0..calibration_n {
        let response = roundtrip(&mut conn, &request_line(1_000_000 + i, config.deadline_ms))
            .expect("calibration response");
        assert_eq!(
            response.get("ok"),
            Some(&Json::Bool(true)),
            "calibration solve failed: {response:?}"
        );
    }
    let service_us = (cal_started.elapsed().as_micros() as u64 / calibration_n as u64).max(1);
    let capacity_rps = config.shards as f64 * 1e6 / service_us as f64;
    let target_rps = config.overload * capacity_rps;
    eprintln!(
        "loadgen: calibrated service_us={service_us} capacity={capacity_rps:.1} rps, \
         driving {target_rps:.1} rps ({}x)",
        config.overload
    );

    // Phase 2: open-loop paced flood of unique scenarios.
    let clients = (config.overload * config.shards as f64).ceil() as usize * 2 + 2;
    let per_client = if config.quick { 40 } else { 400 };
    let interval = Duration::from_secs_f64(clients as f64 / target_rps);
    let counter = Arc::new(AtomicUsize::new(0));
    let flood_started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let counter = Arc::clone(&counter);
            let deadline_ms = config.deadline_ms;
            std::thread::spawn(move || {
                let mut conn = connect(addr, deadline_ms);
                let started = Instant::now();
                let mut samples = Vec::with_capacity(per_client);
                for k in 0..per_client {
                    let due = interval * k as u32;
                    if let Some(wait) = due.checked_sub(started.elapsed()) {
                        std::thread::sleep(wait);
                    }
                    let seq = counter.fetch_add(1, Ordering::Relaxed);
                    let sent = Instant::now();
                    let response = roundtrip(&mut conn, &request_line(seq, deadline_ms));
                    let latency_us = u64::try_from(sent.elapsed().as_micros()).unwrap_or(u64::MAX);
                    let fate = match &response {
                        None => {
                            // Read timed out past deadline + grace: a hang.
                            // The connection is now desynchronized; reopen.
                            conn = connect(addr, deadline_ms);
                            Fate::Hang
                        }
                        Some(r) => classify(r),
                    };
                    samples.push(Sample::from_reply(fate, latency_us, response.as_ref()));
                }
                samples
            })
        })
        .collect();
    let samples: Vec<Sample> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect();
    let flood_ms = flood_started.elapsed().as_millis() as u64;

    // Phase 3: recovery — time until the first post-flood acceptance.
    let recovery_started = Instant::now();
    let mut recovery_ms = None;
    let mut conn = connect(addr, config.deadline_ms);
    for probe in 0..1000u64 {
        let line = request_line(2_000_000 + probe as usize, config.deadline_ms);
        match roundtrip(&mut conn, &line) {
            Some(r) if r.get("ok") == Some(&Json::Bool(true)) => {
                recovery_ms = Some(recovery_started.elapsed().as_millis() as u64);
                break;
            }
            _ => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    let snapshot = daemon.shutdown(true);
    drop(snapshot);

    // Reduce.
    let total = samples.len() as u64;
    let count = |fate: Fate| samples.iter().filter(|s| s.fate == fate).count() as u64;
    let ok = count(Fate::Ok);
    let shed = count(Fate::Shed);
    let shed_unhinted = count(Fate::ShedWithoutRetryHint);
    let deadline_exceeded = count(Fate::DeadlineExceeded);
    let other = count(Fate::OtherError);
    let hangs = count(Fate::Hang);
    let missing_telemetry = samples.iter().filter(|s| !s.telemetry_ok).count() as u64;
    let phase_overruns = samples.iter().filter(|s| s.phase_overrun).count() as u64;
    let accepted = |field: fn(&Sample) -> u64| -> Vec<u64> {
        let mut values: Vec<u64> = samples
            .iter()
            .filter(|s| s.fate == Fate::Ok)
            .map(field)
            .collect();
        values.sort_unstable();
        values
    };
    let accepted_us = accepted(|s| s.latency_us);
    let queue_us = accepted(|s| s.queue_wait_us);
    let solve_us = accepted(|s| s.solve_us);
    let pct_of = |sorted: &[u64], p: f64| -> u64 {
        if sorted.is_empty() {
            return 0;
        }
        let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
        sorted[idx]
    };
    let pct = |p: f64| pct_of(&accepted_us, p);
    let phase_json = |sorted: &[u64]| {
        Json::obj(vec![
            ("p50_us", Json::Num(pct_of(sorted, 0.50) as f64)),
            ("p99_us", Json::Num(pct_of(sorted, 0.99) as f64)),
            ("p999_us", Json::Num(pct_of(sorted, 0.999) as f64)),
        ])
    };
    let shed_rate = if total == 0 {
        0.0
    } else {
        (shed + shed_unhinted) as f64 / total as f64
    };

    let report = Json::obj(vec![
        ("schema", Json::Str("vstack-bench-serve/2".to_string())),
        ("quick", Json::Bool(config.quick)),
        (
            "config",
            Json::obj(vec![
                ("overload", Json::Num(config.overload)),
                ("shards", Json::Num(config.shards as f64)),
                ("queue_depth", Json::Num(config.queue_depth as f64)),
                ("deadline_ms", Json::Num(config.deadline_ms as f64)),
                ("clients", Json::Num(clients as f64)),
                ("requests", Json::Num(total as f64)),
            ]),
        ),
        (
            "calibration",
            Json::obj(vec![
                ("service_us", Json::Num(service_us as f64)),
                ("capacity_rps", Json::Num(capacity_rps)),
                ("target_rps", Json::Num(target_rps)),
            ]),
        ),
        (
            "results",
            Json::obj(vec![
                ("requests", Json::Num(total as f64)),
                ("ok", Json::Num(ok as f64)),
                ("shed", Json::Num(shed as f64)),
                ("shed_without_retry_hint", Json::Num(shed_unhinted as f64)),
                ("deadline_exceeded", Json::Num(deadline_exceeded as f64)),
                ("other_errors", Json::Num(other as f64)),
                ("hangs", Json::Num(hangs as f64)),
                ("shed_rate", Json::Num(shed_rate)),
                ("p50_us", Json::Num(pct(0.50) as f64)),
                ("p99_us", Json::Num(pct(0.99) as f64)),
                ("p999_us", Json::Num(pct(0.999) as f64)),
                (
                    "phases",
                    Json::obj(vec![
                        ("queue_wait", phase_json(&queue_us)),
                        ("solve", phase_json(&solve_us)),
                    ]),
                ),
                ("missing_telemetry", Json::Num(missing_telemetry as f64)),
                ("phase_overruns", Json::Num(phase_overruns as f64)),
                ("flood_ms", Json::Num(flood_ms as f64)),
                (
                    "recovery_ms",
                    recovery_ms.map_or(Json::Null, |ms| Json::Num(ms as f64)),
                ),
            ]),
        ),
    ]);
    if let Err(e) = std::fs::write(&config.out, report.emit() + "\n") {
        eprintln!("loadgen: cannot write {}: {e}", config.out.display());
        return ExitCode::FAILURE;
    }
    eprintln!(
        "loadgen: {total} requests — ok={ok} shed={shed} deadline={deadline_exceeded} \
         other={other} hangs={hangs} shed_rate={shed_rate:.3} p50={}us p99={}us p999={}us \
         recovery={recovery_ms:?}ms -> {}",
        pct(0.50),
        pct(0.99),
        pct(0.999),
        config.out.display()
    );

    // Hard guarantees: structured answers for everything, hints on every
    // rejection, and an accepting server again after the flood.
    let mut failed = false;
    if hangs > 0 {
        eprintln!("loadgen: FAIL — {hangs} request(s) hung past deadline + grace");
        failed = true;
    }
    if shed_unhinted > 0 {
        eprintln!("loadgen: FAIL — {shed_unhinted} shed response(s) lacked retry_after_ms");
        failed = true;
    }
    if recovery_ms.is_none() {
        eprintln!("loadgen: FAIL — server did not accept again after the flood");
        failed = true;
    }
    if missing_telemetry > 0 {
        eprintln!("loadgen: FAIL — {missing_telemetry} reply(ies) lacked a telemetry block");
        failed = true;
    }
    if phase_overruns > 0 {
        eprintln!(
            "loadgen: FAIL — {phase_overruns} reply(ies) reported phase times \
             exceeding the observed wall time"
        );
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// A unique quick scenario per sequence number (imbalance varies in the
/// 6th decimal, so every request is a distinct fingerprint, while the
/// grid shape — and therefore the service time — stays constant).
fn request_line(seq: usize, deadline_ms: u64) -> String {
    let imbalance = 0.1 + (seq % 800_000) as f64 * 1e-6;
    format!(
        r#"{{"op":"solve","deadline_ms":{deadline_ms},"scenario":{{"solve":"vs","layers":2,"imbalance":{imbalance},"fidelity":"quick"}}}}"#
    )
}

fn connect(addr: std::net::SocketAddr, deadline_ms: u64) -> BufReader<TcpStream> {
    let stream = TcpStream::connect(addr).expect("connect to daemon");
    // Grace must exceed the daemon's own reply bound (deadline + 500 ms);
    // a read timeout here means the server truly left a request hanging.
    stream
        .set_read_timeout(Some(Duration::from_millis(deadline_ms + 5_000)))
        .expect("read timeout");
    BufReader::new(stream)
}

/// Sends one line, reads one response; `None` on a read timeout (a hang).
fn roundtrip(conn: &mut BufReader<TcpStream>, line: &str) -> Option<Json> {
    conn.get_mut()
        .write_all(format!("{line}\n").as_bytes())
        .expect("send request");
    let mut response = String::new();
    match conn.read_line(&mut response) {
        Ok(0) => panic!("daemon closed the connection mid-run"),
        Ok(_) => Some(Json::parse(&response).expect("response is JSON")),
        Err(e)
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) =>
        {
            None
        }
        Err(e) => panic!("read failed: {e}"),
    }
}

fn classify(response: &Json) -> Fate {
    if response.get("ok") == Some(&Json::Bool(true)) {
        return Fate::Ok;
    }
    let error = response.get("error");
    let code = error
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
        .unwrap_or("");
    match code {
        "overloaded" => {
            let hinted = error
                .and_then(|e| e.get("retry_after_ms"))
                .and_then(Json::as_f64)
                .is_some_and(|ms| ms >= 1.0);
            if hinted {
                Fate::Shed
            } else {
                Fate::ShedWithoutRetryHint
            }
        }
        "deadline_exceeded" => Fate::DeadlineExceeded,
        _ => Fate::OtherError,
    }
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Config, String> {
    let mut config = Config::default();
    let mut args = args.peekable();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--quick" => config.quick = true,
            "--overload" => {
                let v = args.next().ok_or("--overload needs a factor")?;
                config.overload = v
                    .parse::<f64>()
                    .ok()
                    .filter(|f| f.is_finite() && *f > 0.0)
                    .ok_or_else(|| format!("--overload must be positive, got \"{v}\""))?;
            }
            "--shards" => {
                let v = args.next().ok_or("--shards needs a count")?;
                config.shards = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--shards must be positive, got \"{v}\""))?;
            }
            "--queue-depth" => {
                let v = args.next().ok_or("--queue-depth needs a count")?;
                config.queue_depth = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--queue-depth must be positive, got \"{v}\""))?;
            }
            "--deadline-ms" => {
                let v = args.next().ok_or("--deadline-ms needs a value")?;
                config.deadline_ms = v
                    .parse::<u64>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--deadline-ms must be positive, got \"{v}\""))?;
            }
            "--out" => {
                config.out = PathBuf::from(args.next().ok_or("--out needs a path")?);
            }
            "--help" | "-h" => {
                return Err("usage: loadgen [--quick] [--overload F] [--shards N] \
                     [--queue-depth N] [--deadline-ms N] [--out FILE]"
                    .to_string())
            }
            other => return Err(format!("unknown flag \"{other}\"")),
        }
    }
    Ok(config)
}
