//! Regenerates the **what-if fault map extension** study: every power pad
//! and TSV bundle opened in isolation (exhaustive N-choose-1) plus a
//! deterministic sample of element pairs, answered through the rank-k
//! Sherman–Morrison–Woodbury fault sketch and ranked by worst IR drop.
//!
//! Flags (in addition to the shared `--trace-out`/`--metrics-out`):
//!
//! * `--quick` — coarse grid, 2-layer stack, thin pair sample (CI smoke).
//! * `--ndjson-out PATH` — write one JSON record per ranked entry.
//!
//! Exits nonzero if the SMW sketch answered fewer than half of the map's
//! warm queries — the sketch engaging is the point of the study.

use std::io::Write as _;

use vstack::experiments::ext_faultmap::{fault_map_comparison, FaultMap, FaultMapConfig};
use vstack_bench::{heading, pct};

fn elements_label(e: &vstack::experiments::ext_faultmap::FaultMapEntry) -> String {
    e.elements
        .iter()
        .map(|x| x.to_string())
        .collect::<Vec<_>>()
        .join("+")
}

fn print_top(map: &FaultMap, n: usize) {
    println!(
        "\n{} PDN, {} layers — baseline drop {}, {} singles, {} pairs, {} sketch-answered",
        map.label,
        map.n_layers,
        pct(map.baseline_drop_frac),
        map.singles.len(),
        map.pairs.len(),
        pct(map.sketched_fraction()),
    );
    println!(
        "{:>4} {:<28} {:>12} {:>14} {:>9}",
        "rank", "fault", "max drop", "vs baseline", "sketch"
    );
    for (rank, e) in map.singles.iter().take(n).enumerate() {
        let drop = if e.disconnected {
            "DISCONNECT".to_string()
        } else {
            pct(e.max_ir_drop_frac)
        };
        let delta = if e.disconnected {
            "-".to_string()
        } else {
            format!(
                "{:+.3}%",
                (e.max_ir_drop_frac - map.baseline_drop_frac) * 100.0
            )
        };
        println!(
            "{:>4} {:<28} {:>12} {:>14} {:>9}",
            rank + 1,
            elements_label(e),
            drop,
            delta,
            if e.sketched { "smw" } else { "exact" },
        );
    }
    if let Some(worst_pair) = map.pairs.first() {
        let drop = if worst_pair.disconnected {
            "DISCONNECT".to_string()
        } else {
            pct(worst_pair.max_ir_drop_frac)
        };
        println!(
            "worst sampled pair: {} at {}",
            elements_label(worst_pair),
            drop
        );
    }
}

fn ndjson_record(map: &FaultMap, e: &vstack::experiments::ext_faultmap::FaultMapEntry) -> String {
    let elements = e
        .elements
        .iter()
        .map(|x| format!("\"{x}\""))
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"study\":\"ext_faultmap\",\"label\":\"{}\",\"layers\":{},\
         \"order\":{},\"elements\":[{}],\"max_ir_drop_frac\":{},\
         \"disconnected\":{},\"sketched\":{}}}",
        map.label,
        map.n_layers,
        e.elements.len(),
        elements,
        if e.disconnected {
            "null".to_string()
        } else {
            format!("{:e}", e.max_ir_drop_frac)
        },
        e.disconnected,
        e.sketched,
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let obs = vstack_bench::obs::ObsOutputs::from_cli_args();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let ndjson_out = args
        .iter()
        .position(|a| a == "--ndjson-out")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let config = if quick {
        FaultMapConfig::quick()
    } else {
        FaultMapConfig::default()
    };

    heading("Extension — what-if fault maps through the rank-k SMW sketch");
    let maps = fault_map_comparison(&config)?;
    for map in &maps {
        print_top(map, 10);
    }

    if let Some(path) = ndjson_out {
        let mut f = std::fs::File::create(&path)?;
        for map in &maps {
            for e in map.singles.iter().chain(&map.pairs) {
                writeln!(f, "{}", ndjson_record(map, e))?;
            }
        }
        eprintln!("ndjson: wrote {path}");
    }

    let starved: Vec<_> = maps
        .iter()
        .filter(|m| m.sketched_fraction() < 0.5)
        .collect();
    obs.finish()?;
    if !starved.is_empty() {
        for m in &starved {
            eprintln!(
                "FAIL: {} {}-layer map only {} sketch-answered",
                m.label,
                m.n_layers,
                pct(m.sketched_fraction())
            );
        }
        std::process::exit(1);
    }
    Ok(())
}
