//! Regenerates **Table 1**: major PDN modeling parameters.

use vstack::experiments::tables;
use vstack::pdn::PdnParams;
use vstack_bench::heading;

fn main() {
    heading("Table 1 — Major PDN modeling parameters");
    for row in tables::table1(&PdnParams::paper_defaults()) {
        println!("{:<45} {}", row.name, row.value);
    }
}
