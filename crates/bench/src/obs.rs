//! Observability wiring shared by the figure/exploration binaries.
//!
//! Every binary in this crate accepts two optional flags:
//!
//! * `--trace-out PATH` — enable span recording for the whole run and, on
//!   exit, write the NDJSON span log at `PATH` plus the collapsed-stack
//!   file at `PATH.folded` (feed the latter to `inferno-flamegraph`).
//! * `--metrics-out PATH` — on exit, write the process-wide metrics
//!   snapshot (`vstack-obs-metrics` JSON) at `PATH`.
//!
//! The fig/table/ext binaries take no other arguments, so they pick both
//! flags up with [`ObsOutputs::from_cli_args`]; `explore` parses its own
//! flag set and constructs [`ObsOutputs::new`] directly.

use std::path::PathBuf;

use vstack_engine::json::Json;

/// The canonical `trace_id` placeholder left by [`zero_wallclock`].
pub const ZEROED_TRACE_ID: &str = "0000000000000000";

/// Recursively zeroes every wall-clock-dependent field of a JSON
/// document so two runs of a deterministic workload compare
/// byte-identical:
///
/// * numeric fields whose name ends in `_us` or `_ms` (latencies,
///   uptimes, backoff hints) become `0`;
/// * object fields with those suffixes (or `_us_hist`) are treated as
///   histograms: `sum` and `buckets` are zeroed, observation *counts*
///   stay, since how many times a timer fired is deterministic;
/// * `trace_id` strings become [`ZEROED_TRACE_ID`] (minted per process,
///   so never reproducible).
///
/// Used by the `explore` snapshot test and the serving telemetry
/// byte-identity test; keep the two in sync by keeping them here.
pub fn zero_wallclock(doc: &mut Json) {
    match doc {
        Json::Obj(fields) => {
            for (name, value) in fields {
                let timed =
                    name.ends_with("_us") || name.ends_with("_ms") || name.ends_with("_us_hist");
                match (timed, &mut *value) {
                    (true, Json::Num(n)) => *n = 0.0,
                    (true, Json::Obj(hist_fields)) => {
                        for (field, v) in hist_fields {
                            match (field.as_str(), &mut *v) {
                                ("sum", Json::Num(n)) => *n = 0.0,
                                ("buckets", Json::Arr(buckets)) => {
                                    buckets.fill(Json::Num(0.0));
                                }
                                _ => zero_wallclock(v),
                            }
                        }
                    }
                    (_, Json::Str(s)) if name == "trace_id" => {
                        *s = ZEROED_TRACE_ID.to_string();
                    }
                    (_, v) => zero_wallclock(v),
                }
            }
        }
        Json::Arr(items) => items.iter_mut().for_each(zero_wallclock),
        _ => {}
    }
}

/// Deferred observability outputs for one binary run.
///
/// Construction arms the tracer when a trace path was requested;
/// [`ObsOutputs::finish`] drains and writes everything at the end of
/// `main`.
#[must_use = "call finish() at the end of main to write the requested outputs"]
pub struct ObsOutputs {
    trace_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
}

impl ObsOutputs {
    /// Wires up the requested outputs, enabling span recording if a trace
    /// destination was given.
    pub fn new(trace_out: Option<PathBuf>, metrics_out: Option<PathBuf>) -> Self {
        if trace_out.is_some() {
            vstack_obs::trace::set_enabled(true);
        }
        ObsOutputs {
            trace_out,
            metrics_out,
        }
    }

    /// Scans the raw CLI arguments for `--trace-out PATH` and
    /// `--metrics-out PATH`, ignoring everything else. Safe for the
    /// figure binaries, which define no other flags.
    pub fn from_cli_args() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let value_of = |flag: &str| {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1))
                .map(PathBuf::from)
        };
        Self::new(value_of("--trace-out"), value_of("--metrics-out"))
    }

    /// Writes the requested trace and metrics files, reporting each path
    /// on stderr. Call once, at the end of `main`.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from writing the output files.
    pub fn finish(self) -> std::io::Result<()> {
        if let Some(path) = self.trace_out {
            vstack_obs::trace::set_enabled(false);
            let folded = vstack_obs::trace::write_trace(&path)?;
            eprintln!(
                "trace: wrote {} (NDJSON) and {} (collapsed stacks)",
                path.display(),
                folded.display()
            );
        }
        if let Some(path) = self.metrics_out {
            std::fs::write(&path, vstack_obs::metrics::snapshot_json())?;
            eprintln!("metrics: wrote {}", path.display());
        }
        Ok(())
    }
}
