//! Observability wiring shared by the figure/exploration binaries.
//!
//! Every binary in this crate accepts two optional flags:
//!
//! * `--trace-out PATH` — enable span recording for the whole run and, on
//!   exit, write the NDJSON span log at `PATH` plus the collapsed-stack
//!   file at `PATH.folded` (feed the latter to `inferno-flamegraph`).
//! * `--metrics-out PATH` — on exit, write the process-wide metrics
//!   snapshot (`vstack-obs-metrics` JSON) at `PATH`.
//!
//! The fig/table/ext binaries take no other arguments, so they pick both
//! flags up with [`ObsOutputs::from_cli_args`]; `explore` parses its own
//! flag set and constructs [`ObsOutputs::new`] directly.

use std::path::PathBuf;

/// Deferred observability outputs for one binary run.
///
/// Construction arms the tracer when a trace path was requested;
/// [`ObsOutputs::finish`] drains and writes everything at the end of
/// `main`.
#[must_use = "call finish() at the end of main to write the requested outputs"]
pub struct ObsOutputs {
    trace_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
}

impl ObsOutputs {
    /// Wires up the requested outputs, enabling span recording if a trace
    /// destination was given.
    pub fn new(trace_out: Option<PathBuf>, metrics_out: Option<PathBuf>) -> Self {
        if trace_out.is_some() {
            vstack_obs::trace::set_enabled(true);
        }
        ObsOutputs {
            trace_out,
            metrics_out,
        }
    }

    /// Scans the raw CLI arguments for `--trace-out PATH` and
    /// `--metrics-out PATH`, ignoring everything else. Safe for the
    /// figure binaries, which define no other flags.
    pub fn from_cli_args() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let value_of = |flag: &str| {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1))
                .map(PathBuf::from)
        };
        Self::new(value_of("--trace-out"), value_of("--metrics-out"))
    }

    /// Writes the requested trace and metrics files, reporting each path
    /// on stderr. Call once, at the end of `main`.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from writing the output files.
    pub fn finish(self) -> std::io::Result<()> {
        if let Some(path) = self.trace_out {
            vstack_obs::trace::set_enabled(false);
            let folded = vstack_obs::trace::write_trace(&path)?;
            eprintln!(
                "trace: wrote {} (NDJSON) and {} (collapsed stacks)",
                path.display(),
                folded.display()
            );
        }
        if let Some(path) = self.metrics_out {
            std::fs::write(&path, vstack_obs::metrics::snapshot_json())?;
            eprintln!("metrics: wrote {}", path.display());
        }
        Ok(())
    }
}
