//! Parallel-solver baseline: serial vs threaded medians for the kernels the
//! PR 2 thread pool accelerates, written to `BENCH_solver.json` at the repo
//! root so regressions are diffable across commits.
//!
//! Four benches, each at 1 and 4 pool contexts:
//!
//! * `spmv` — row-partitioned CSR matrix–vector product on a PDN-sized
//!   grid Laplacian (above the `PAR_SPMV_MIN_NNZ` threshold, so the
//!   threaded pool genuinely engages).
//! * `cg_solve` — a full workspace-reusing CG solve.
//! * `ic0_apply` — the level-scheduled IC(0) forward/backward
//!   substitution.
//! * `fig6_sweep` — the end-to-end Fig 6 IR-drop study, whose series fan
//!   out over the pool.
//!
//! Before timing, the Fig 6 study is run under both pools and compared:
//! the threaded result must be bit-identical to the serial one. Set
//! `VSTACK_BENCH_QUICK=1` for a fast smoke run (CI) with smaller systems
//! and fewer samples. Medians are honest wall-clock numbers for whatever
//! host runs the bench; `host_parallelism` is recorded alongside so a
//! 1-CPU container's flat serial/threaded ratio is interpretable.

use std::hint::black_box;
use std::sync::Arc;

use criterion::{BenchReport, Criterion};
use vstack::experiments::fig6::ir_drop_study;
use vstack::experiments::Fidelity;
use vstack::sparse::ichol::IncompleteCholesky;
use vstack::sparse::pool::{with_pool, ThreadPool};
use vstack::sparse::solver::{cg_with_guess_ws, CgOptions, SolveWorkspace};
use vstack::sparse::{CsrMatrix, TripletMatrix};

/// 2-D grid Laplacian with Dirichlet corners, sized like one PDN net.
fn grid_laplacian(n: usize) -> (CsrMatrix, Vec<f64>) {
    let mut t = TripletMatrix::new(n * n, n * n);
    for j in 0..n {
        for i in 0..n {
            let a = j * n + i;
            if i + 1 < n {
                t.stamp_conductance(Some(a), Some(a + 1), 20.0);
            }
            if j + 1 < n {
                t.stamp_conductance(Some(a), Some(a + n), 20.0);
            }
        }
    }
    for corner in [0, n - 1, n * (n - 1), n * n - 1] {
        t.push(corner, corner, 100.0);
    }
    let a = t.to_csr();
    let b: Vec<f64> = (0..n * n).map(|i| ((i % 7) as f64 - 3.0) * 1e-3).collect();
    (a, b)
}

struct Sizes {
    spmv_n: usize,
    cg_n: usize,
    ic0_n: usize,
    fig6_layers: usize,
    kernel_samples: usize,
    sweep_samples: usize,
}

fn sizes(quick: bool) -> Sizes {
    if quick {
        Sizes {
            spmv_n: 192, // 36 864 nodes: keeps nnz above PAR_SPMV_MIN_NNZ
            cg_n: 48,
            ic0_n: 96, // 9 216 unknowns: above the IC(0) PAR_MIN_DIM gate
            fig6_layers: 2,
            kernel_samples: 10,
            sweep_samples: 1,
        }
    } else {
        Sizes {
            spmv_n: 256,
            cg_n: 96,
            ic0_n: 160,
            fig6_layers: 4,
            kernel_samples: 30,
            sweep_samples: 3,
        }
    }
}

/// The two pool widths every bench is measured at.
fn pool_widths() -> [(usize, Arc<ThreadPool>); 2] {
    [
        (1, Arc::new(ThreadPool::new(1))),
        (4, Arc::new(ThreadPool::new(4))),
    ]
}

fn bench_kernels(c: &mut Criterion, s: &Sizes) {
    let (a_spmv, b_spmv) = grid_laplacian(s.spmv_n);
    let (a_cg, b_cg) = grid_laplacian(s.cg_n);
    let (a_ic, b_ic) = grid_laplacian(s.ic0_n);
    let ic = IncompleteCholesky::factor(&a_ic).expect("grid laplacian admits IC(0)");

    for (threads, pool) in pool_widths() {
        with_pool(&pool, || {
            let mut g = c.benchmark_group("spmv");
            g.sample_size(s.kernel_samples);
            g.bench_function(format!("threads{threads}"), |bch| {
                let mut y = vec![0.0; b_spmv.len()];
                bch.iter(|| {
                    a_spmv.mul_vec_into(&b_spmv, &mut y);
                    black_box(y[0])
                })
            });
            g.finish();
        });
        with_pool(&pool, || {
            let mut g = c.benchmark_group("cg_solve");
            g.sample_size(s.kernel_samples);
            g.bench_function(format!("threads{threads}"), |bch| {
                let opts = CgOptions::default();
                let mut ws = SolveWorkspace::new();
                bch.iter(|| {
                    black_box(cg_with_guess_ws(&a_cg, &b_cg, None, &opts, &mut ws).expect("cg"))
                })
            });
            g.finish();
        });
        with_pool(&pool, || {
            let mut g = c.benchmark_group("ic0_apply");
            g.sample_size(s.kernel_samples);
            g.bench_function(format!("threads{threads}"), |bch| {
                let mut z = vec![0.0; b_ic.len()];
                bch.iter(|| {
                    ic.apply(&b_ic, &mut z);
                    black_box(z[0])
                })
            });
            g.finish();
        });
    }
}

fn bench_fig6(c: &mut Criterion, s: &Sizes) {
    // Determinism gate first: the pooled study must be bit-identical to
    // the serial one before its timing means anything.
    let widths = pool_widths();
    let serial = with_pool(&widths[0].1, || {
        ir_drop_study(Fidelity::Quick, s.fig6_layers).expect("fig6")
    });
    let threaded = with_pool(&widths[1].1, || {
        ir_drop_study(Fidelity::Quick, s.fig6_layers).expect("fig6")
    });
    assert_eq!(
        serial, threaded,
        "threaded fig6 study must be bit-identical to serial"
    );

    for (threads, pool) in widths {
        with_pool(&pool, || {
            let mut g = c.benchmark_group("fig6_sweep");
            g.sample_size(s.sweep_samples);
            g.bench_function(format!("threads{threads}"), |bch| {
                bch.iter(|| black_box(ir_drop_study(Fidelity::Quick, s.fig6_layers).expect("fig6")))
            });
            g.finish();
        });
    }
}

/// Renders the collected reports as `BENCH_solver.json` at the repo root.
fn render_json(reports: &[BenchReport], quick: bool) -> String {
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"vstack-bench-solver/1\",\n");
    out.push_str(&format!("  \"host_parallelism\": {host},\n"));
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str("  \"entries\": [\n");
    for (i, r) in reports.iter().enumerate() {
        let threads: usize = r
            .name
            .rsplit("threads")
            .next()
            .and_then(|t| t.parse().ok())
            .unwrap_or(1);
        let comma = if i + 1 < reports.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"threads\": {}, \"median_ns\": {}}}{}\n",
            r.name, threads, r.median_ns, comma
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let quick = std::env::var("VSTACK_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0");
    let s = sizes(quick);
    let mut c = Criterion::default();
    bench_kernels(&mut c, &s);
    bench_fig6(&mut c, &s);

    let json = render_json(c.reports(), quick);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_solver.json");
    std::fs::write(path, &json).expect("write BENCH_solver.json");
    println!("wrote {path}");
}
