//! Solver baseline: kernel medians, preconditioner scaling, and the
//! end-to-end Fig 6 sweep, written to `BENCH_solver.json` at the repo
//! root so regressions are diffable across commits.
//!
//! Groups:
//!
//! * `spmv` — row-partitioned CSR matrix–vector product on a PDN-sized
//!   grid Laplacian (above the `PAR_SPMV_MIN_NNZ` threshold, so the
//!   threaded pool genuinely engages).
//! * `cg_solve` — a full workspace-reusing CG solve through the production
//!   hot path for its size: at or above `NetworkBuilder::AMG_MIN_UNKNOWNS`
//!   that is the matrix-free stencil operator with the mixed-precision f32
//!   AMG V-cycle, below it plain Jacobi CG.
//! * `cg_amg` — the same system solved through a pattern-cached f64
//!   [`AmgHierarchy`] over the CSR — the pre-stencil baseline the 2×
//!   speedup target is measured against.
//! * `cg_stencil` — stencil operator outer CG, f64 AMG V-cycle: isolates
//!   the matrix-free apply's contribution.
//! * `cg_mixed` — stencil operator outer CG, f32 AMG V-cycle: the full
//!   mixed-precision hot path (same code `cg_solve` takes at this size).
//! * `ic0_apply` — the level-scheduled IC(0) forward/backward
//!   substitution.
//! * `cg_scaling/{jacobi,ic0,amg,mixed}/g{N}` — single-thread CG medians
//!   and iteration counts across grid sizes, one entry per
//!   preconditioner (`mixed` is the stencil-operator + f32-V-cycle hot
//!   path). Jacobi and IC(0) pay any setup inside the timed solve (as
//!   the escalation ladder does); AMG and mixed are timed against a
//!   pattern-cached hierarchy (as `SolveScratch` reuse does), with the
//!   one-time f64 build cost reported as its own
//!   `cg_scaling/amg_setup/g{N}` entry.
//! * `fault_sketch/{build,query,exact}/g96` — the rank-k SMW fault
//!   sketch at the g96 acceptance point: one-time sketch construction
//!   (baseline + candidate-column solves), the warm rank-2 what-if query,
//!   and the exact CG+AMG re-solve of the same downdated system. CI
//!   gates `query` at ≥ 20× faster than `exact`.
//! * `fig6_sweep` — the end-to-end Fig 6 IR-drop study, whose series fan
//!   out over the pool.
//! * `obs_overhead/{disabled,enabled,span_disabled}` — the tracing
//!   overhead gate: the `cg_solve` system solved with span recording off
//!   (the shipping default; CI holds its median within 1% of
//!   `cg_solve/threads1`) and on, plus the per-probe cost of a disabled
//!   `span!` itself.
//!
//! Threaded variants are only benched at widths the host actually has:
//! on a 1-CPU container a `threads4` pool just time-slices one core and
//! its median measures oversubscription, not speedup. Skipped widths are
//! noted on stdout and `host_parallelism` is always recorded in the JSON
//! so the entry set is interpretable. The Fig 6 determinism gate still
//! compares 1-wide and 4-wide pools regardless — bit-identity must hold
//! even oversubscribed.
//!
//! Set `VSTACK_BENCH_QUICK=1` for a fast smoke run (CI) with smaller
//! systems and fewer samples.

use std::collections::HashMap;
use std::hint::black_box;
use std::sync::Arc;

use criterion::{BenchReport, Criterion};
use vstack::experiments::fig6::ir_drop_study;
use vstack::experiments::Fidelity;
use vstack::pdn::network::NetworkBuilder;
use vstack::sparse::ichol::IncompleteCholesky;
use vstack::sparse::pool::{with_pool, ThreadPool};
use vstack::sparse::solver::{
    cg_with_amg_f32_ws, cg_with_amg_op_ws, cg_with_amg_ws, cg_with_guess_ws, CgOptions,
    Preconditioner, SolveWorkspace,
};
use vstack::sparse::{
    AmgHierarchy, AmgHierarchyF32, AmgOptions, CsrMatrix, SmwSketch, SmwUpdate, StencilDescriptor,
    StencilOperator, TripletMatrix,
};

/// 2-D grid Laplacian with Dirichlet stamps on `rails`, sized like one
/// PDN net. The fault-sketch groups pass corner subsets to stamp the
/// downdated (rail-opened) system exactly.
fn grid_laplacian_with_rails(n: usize, rails: &[usize]) -> (CsrMatrix, Vec<f64>) {
    let mut t = TripletMatrix::new(n * n, n * n);
    for j in 0..n {
        for i in 0..n {
            let a = j * n + i;
            if i + 1 < n {
                t.stamp_conductance(Some(a), Some(a + 1), 20.0);
            }
            if j + 1 < n {
                t.stamp_conductance(Some(a), Some(a + n), 20.0);
            }
        }
    }
    for &rail in rails {
        t.push(rail, rail, 100.0);
    }
    let a = t.to_csr();
    let b: Vec<f64> = (0..n * n).map(|i| ((i % 7) as f64 - 3.0) * 1e-3).collect();
    (a, b)
}

/// The four-corner Dirichlet grid every kernel group uses.
fn grid_laplacian(n: usize) -> (CsrMatrix, Vec<f64>) {
    grid_laplacian_with_rails(n, &[0, n - 1, n * (n - 1), n * n - 1])
}

struct Sizes {
    spmv_n: usize,
    cg_n: usize,
    ic0_n: usize,
    scaling_grids: &'static [usize],
    fig6_layers: usize,
    kernel_samples: usize,
    scaling_samples: usize,
    sweep_samples: usize,
}

fn sizes(quick: bool) -> Sizes {
    if quick {
        Sizes {
            spmv_n: 192, // 36 864 nodes: keeps nnz above PAR_SPMV_MIN_NNZ
            cg_n: 96,    // 9 216 unknowns: engages the stencil + mixed hot path
            ic0_n: 96,   // 9 216 unknowns: above the IC(0) PAR_MIN_DIM gate
            scaling_grids: &[12, 48, 96],
            fig6_layers: 2,
            kernel_samples: 10,
            scaling_samples: 3,
            sweep_samples: 1,
        }
    } else {
        Sizes {
            spmv_n: 256,
            cg_n: 192, // 36 864 unknowns: the g192 2x-speedup acceptance point
            ic0_n: 160,
            scaling_grids: &[24, 48, 96, 192],
            fig6_layers: 4,
            kernel_samples: 30,
            scaling_samples: 10,
            sweep_samples: 3,
        }
    }
}

/// Extra per-entry facts the timing report alone cannot carry.
struct Extra {
    preconditioner: &'static str,
    /// Outer-iteration operator: `"csr"` or `"stencil"`.
    operator: &'static str,
    /// Preconditioner precision: `"f64"` or `"mixed"` (f32 V-cycle).
    precision: &'static str,
    iterations: usize,
}

type Meta = HashMap<String, Extra>;

fn host_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Pool widths worth timing on this host: always 1, plus 4 when the
/// host genuinely has that many CPUs.
fn pool_widths() -> Vec<(usize, Arc<ThreadPool>)> {
    let host = host_parallelism();
    let mut widths = vec![(1, Arc::new(ThreadPool::new(1)))];
    if host >= 4 {
        widths.push((4, Arc::new(ThreadPool::new(4))));
    } else {
        println!(
            "note: skipping threads4 benches — host_parallelism = {host}, \
             a 4-wide pool would only measure oversubscription"
        );
    }
    widths
}

/// One untimed solve to harvest the iteration count an entry will report.
fn probe_iterations(
    a: &CsrMatrix,
    b: &[f64],
    opts: &CgOptions,
    amg: Option<&AmgHierarchy>,
) -> usize {
    let mut ws = SolveWorkspace::new();
    let solved = match amg {
        Some(h) => cg_with_amg_ws(a, b, None, opts, h, &mut ws).expect("amg probe solve"),
        None => cg_with_guess_ws(a, b, None, opts, &mut ws).expect("probe solve"),
    };
    solved.iterations
}

/// Iteration count of the stencil-operator + f64 AMG path.
fn probe_iterations_stencil(
    op: &StencilOperator,
    b: &[f64],
    opts: &CgOptions,
    amg: &AmgHierarchy,
) -> usize {
    let mut ws = SolveWorkspace::new();
    cg_with_amg_op_ws(op, b, None, opts, amg, &mut ws)
        .expect("stencil probe solve")
        .iterations
}

/// Iteration count of the mixed-precision (f32 V-cycle) path.
fn probe_iterations_mixed(
    op: &StencilOperator,
    b: &[f64],
    opts: &CgOptions,
    amg: &AmgHierarchyF32,
) -> usize {
    let mut ws = SolveWorkspace::new();
    cg_with_amg_f32_ws(op, b, None, opts, amg, &mut ws)
        .expect("mixed probe solve")
        .iterations
}

fn bench_kernels(c: &mut Criterion, s: &Sizes, meta: &mut Meta) {
    let (a_spmv, b_spmv) = grid_laplacian(s.spmv_n);
    let (a_cg, b_cg) = grid_laplacian(s.cg_n);
    let (a_ic, b_ic) = grid_laplacian(s.ic0_n);
    let ic = IncompleteCholesky::factor(&a_ic).expect("grid laplacian admits IC(0)");
    let amg = AmgHierarchy::build(&a_cg, &AmgOptions::default()).expect("grid laplacian coarsens");
    let stencil = StencilOperator::from_csr(&a_cg, StencilDescriptor::single_plane(s.cg_n))
        .expect("grid laplacian extracts");
    let amg_f32 = AmgHierarchyF32::from_hierarchy(&amg);

    // cg_solve mirrors the production default for its size: at
    // AMG_MIN_UNKNOWNS unknowns the pdn layer switches its first ladder
    // rung to the stencil operator with the mixed-precision f32 V-cycle.
    let cg_uses_amg = a_cg.rows() >= NetworkBuilder::AMG_MIN_UNKNOWNS;
    let cg_opts = CgOptions::default();

    for (threads, pool) in pool_widths() {
        with_pool(&pool, || {
            let mut g = c.benchmark_group("spmv");
            g.sample_size(s.kernel_samples);
            g.bench_function(format!("threads{threads}"), |bch| {
                let mut y = vec![0.0; b_spmv.len()];
                bch.iter(|| {
                    a_spmv.mul_vec_into(&b_spmv, &mut y);
                    black_box(y[0])
                })
            });
            g.finish();
        });
        with_pool(&pool, || {
            let iterations = if cg_uses_amg {
                probe_iterations_mixed(&stencil, &b_cg, &cg_opts, &amg_f32)
            } else {
                probe_iterations(&a_cg, &b_cg, &cg_opts, None)
            };
            meta.insert(
                format!("cg_solve/threads{threads}"),
                Extra {
                    preconditioner: if cg_uses_amg { "amgf32" } else { "jacobi" },
                    operator: if cg_uses_amg { "stencil" } else { "csr" },
                    precision: if cg_uses_amg { "mixed" } else { "f64" },
                    iterations,
                },
            );
            let mut g = c.benchmark_group("cg_solve");
            g.sample_size(s.kernel_samples);
            g.bench_function(format!("threads{threads}"), |bch| {
                let mut ws = SolveWorkspace::new();
                bch.iter(|| {
                    let solved = if cg_uses_amg {
                        cg_with_amg_f32_ws(&stencil, &b_cg, None, &cg_opts, &amg_f32, &mut ws)
                    } else {
                        cg_with_guess_ws(&a_cg, &b_cg, None, &cg_opts, &mut ws)
                    };
                    black_box(solved.expect("cg"))
                })
            });
            g.finish();
        });
        with_pool(&pool, || {
            let iterations = probe_iterations(&a_cg, &b_cg, &cg_opts, Some(&amg));
            meta.insert(
                format!("cg_amg/threads{threads}"),
                Extra {
                    preconditioner: "amg",
                    operator: "csr",
                    precision: "f64",
                    iterations,
                },
            );
            let mut g = c.benchmark_group("cg_amg");
            g.sample_size(s.kernel_samples);
            g.bench_function(format!("threads{threads}"), |bch| {
                let mut ws = SolveWorkspace::new();
                bch.iter(|| {
                    black_box(
                        cg_with_amg_ws(&a_cg, &b_cg, None, &cg_opts, &amg, &mut ws)
                            .expect("cg+amg"),
                    )
                })
            });
            g.finish();
        });
        with_pool(&pool, || {
            let iterations = probe_iterations_stencil(&stencil, &b_cg, &cg_opts, &amg);
            meta.insert(
                format!("cg_stencil/threads{threads}"),
                Extra {
                    preconditioner: "amg",
                    operator: "stencil",
                    precision: "f64",
                    iterations,
                },
            );
            let mut g = c.benchmark_group("cg_stencil");
            g.sample_size(s.kernel_samples);
            g.bench_function(format!("threads{threads}"), |bch| {
                let mut ws = SolveWorkspace::new();
                bch.iter(|| {
                    black_box(
                        cg_with_amg_op_ws(&stencil, &b_cg, None, &cg_opts, &amg, &mut ws)
                            .expect("cg+stencil"),
                    )
                })
            });
            g.finish();
        });
        with_pool(&pool, || {
            let iterations = probe_iterations_mixed(&stencil, &b_cg, &cg_opts, &amg_f32);
            meta.insert(
                format!("cg_mixed/threads{threads}"),
                Extra {
                    preconditioner: "amgf32",
                    operator: "stencil",
                    precision: "mixed",
                    iterations,
                },
            );
            let mut g = c.benchmark_group("cg_mixed");
            g.sample_size(s.kernel_samples);
            g.bench_function(format!("threads{threads}"), |bch| {
                let mut ws = SolveWorkspace::new();
                bch.iter(|| {
                    black_box(
                        cg_with_amg_f32_ws(&stencil, &b_cg, None, &cg_opts, &amg_f32, &mut ws)
                            .expect("cg+mixed"),
                    )
                })
            });
            g.finish();
        });
        with_pool(&pool, || {
            let mut g = c.benchmark_group("ic0_apply");
            g.sample_size(s.kernel_samples);
            g.bench_function(format!("threads{threads}"), |bch| {
                let mut z = vec![0.0; b_ic.len()];
                bch.iter(|| {
                    ic.apply(&b_ic, &mut z);
                    black_box(z[0])
                })
            });
            g.finish();
        });
    }
}

/// Tracing-overhead gate: the `cg_solve` system with spans compiled in,
/// timed with recording disabled (the shipping default) and enabled, plus
/// a microbench pricing the disabled `span!` probe itself. CI compares
/// the `disabled` median against `cg_solve/threads1`.
fn bench_obs_overhead(c: &mut Criterion, s: &Sizes) {
    let (a, b) = grid_laplacian(s.cg_n);
    let cg_uses_amg = a.rows() >= NetworkBuilder::AMG_MIN_UNKNOWNS;
    let amg = AmgHierarchy::build(&a, &AmgOptions::default()).expect("grid laplacian coarsens");
    let stencil = StencilOperator::from_csr(&a, StencilDescriptor::single_plane(s.cg_n))
        .expect("grid laplacian extracts");
    let amg_f32 = AmgHierarchyF32::from_hierarchy(&amg);
    let opts = CgOptions::default();
    let pool = Arc::new(ThreadPool::new(1));
    with_pool(&pool, || {
        let mut g = c.benchmark_group("obs_overhead");
        g.sample_size(s.kernel_samples);
        for (mode, on) in [("disabled", false), ("enabled", true)] {
            vstack_obs::trace::set_enabled(on);
            g.bench_function(mode, |bch| {
                let mut ws = SolveWorkspace::new();
                bch.iter(|| {
                    let solved = if cg_uses_amg {
                        cg_with_amg_f32_ws(&stencil, &b, None, &opts, &amg_f32, &mut ws)
                    } else {
                        cg_with_guess_ws(&a, &b, None, &opts, &mut ws)
                    };
                    black_box(solved.expect("cg"))
                })
            });
            vstack_obs::trace::set_enabled(false);
            let _ = vstack_obs::trace::drain();
        }
        g.bench_function("span_disabled", |bch| {
            bch.iter(|| black_box(vstack_obs::span!("overhead_probe")))
        });
        g.finish();
    });
}

/// Single-thread iteration-count and median scaling across grid sizes,
/// one entry per preconditioner per grid.
fn bench_scaling(c: &mut Criterion, s: &Sizes, meta: &mut Meta) {
    let pool = Arc::new(ThreadPool::new(1));
    for &grid in s.scaling_grids {
        let (a, b) = grid_laplacian(grid);
        with_pool(&pool, || {
            let amg =
                AmgHierarchy::build(&a, &AmgOptions::default()).expect("grid laplacian coarsens");
            let mut g = c.benchmark_group("cg_scaling");
            g.sample_size(s.scaling_samples);
            g.bench_function(format!("amg_setup/g{grid}"), |bch| {
                bch.iter(|| {
                    black_box(AmgHierarchy::build(&a, &AmgOptions::default()).expect("amg setup"))
                })
            });
            g.finish();
            for pre in ["jacobi", "ic0", "amg"] {
                let opts = CgOptions {
                    preconditioner: match pre {
                        "jacobi" => Preconditioner::Jacobi,
                        "ic0" => Preconditioner::IncompleteCholesky,
                        _ => Preconditioner::Amg,
                    },
                    ..CgOptions::default()
                };
                let cached_amg = (pre == "amg").then_some(&amg);
                let iterations = probe_iterations(&a, &b, &opts, cached_amg);
                meta.insert(
                    format!("cg_scaling/{pre}/g{grid}"),
                    Extra {
                        preconditioner: pre,
                        operator: "csr",
                        precision: "f64",
                        iterations,
                    },
                );
                let mut g = c.benchmark_group("cg_scaling");
                g.sample_size(s.scaling_samples);
                g.bench_function(format!("{pre}/g{grid}"), |bch| {
                    let mut ws = SolveWorkspace::new();
                    bch.iter(|| {
                        let solved = match cached_amg {
                            Some(h) => cg_with_amg_ws(&a, &b, None, &opts, h, &mut ws),
                            None => cg_with_guess_ws(&a, &b, None, &opts, &mut ws),
                        };
                        black_box(solved.expect("scaling solve"))
                    })
                });
                g.finish();
            }
            // The stencil + f32-V-cycle hot path at every size, so the
            // crossover against the pure-f64 rungs is in the record.
            let stencil = StencilOperator::from_csr(&a, StencilDescriptor::single_plane(grid))
                .expect("grid laplacian extracts");
            let amg_f32 = AmgHierarchyF32::from_hierarchy(&amg);
            let opts = CgOptions::default();
            let iterations = probe_iterations_mixed(&stencil, &b, &opts, &amg_f32);
            meta.insert(
                format!("cg_scaling/mixed/g{grid}"),
                Extra {
                    preconditioner: "amgf32",
                    operator: "stencil",
                    precision: "mixed",
                    iterations,
                },
            );
            let mut g = c.benchmark_group("cg_scaling");
            g.sample_size(s.scaling_samples);
            g.bench_function(format!("mixed/g{grid}"), |bch| {
                let mut ws = SolveWorkspace::new();
                bch.iter(|| {
                    black_box(
                        cg_with_amg_f32_ws(&stencil, &b, None, &opts, &amg_f32, &mut ws)
                            .expect("mixed scaling solve"),
                    )
                })
            });
            g.finish();
        });
    }
}

/// Fault-sketch groups at the g96 acceptance point (9 216 unknowns),
/// benched at this fixed size in quick and full runs alike:
///
/// * `fault_sketch/build/g96` — one-time sketch construction: the
///   tight-tolerance baseline solve plus one solve-vector per candidate
///   fault column (the four Dirichlet "rails" of the grid Laplacian).
/// * `fault_sketch/query/g96` — the warm rank-2 SMW what-if answer
///   (opening two rails): `2k` axpys plus `O(k³)` dense work, no solve.
/// * `fault_sketch/exact/g96` — the exact CG+AMG re-solve of the same
///   downdated system the query replaces, timed against a pre-built
///   hierarchy (generous to the exact path — production would also pay
///   the re-stamp). CI gates `query` ≥ 20× faster than `exact`.
fn bench_fault_sketch(c: &mut Criterion, s: &Sizes, meta: &mut Meta) {
    let grid = 96usize;
    let (a, b) = grid_laplacian(grid);
    // The four Dirichlet corners are the grid's "pad rails": each is a
    // rank-1 stamp g·e eᵀ whose removal the sketch answers via SMW.
    let rails = [0, grid - 1, grid * (grid - 1), grid * grid - 1];
    let rail_g = 100.0;
    let opts = CgOptions {
        tolerance: 1e-11,
        preconditioner: Preconditioner::Amg,
        ..CgOptions::default()
    };
    let pool = Arc::new(ThreadPool::new(1));
    with_pool(&pool, || {
        let amg = AmgHierarchy::build(&a, &AmgOptions::default()).expect("grid laplacian coarsens");
        let solve =
            |rhs: &[f64], ws: &mut SolveWorkspace| cg_with_amg_ws(&a, rhs, None, &opts, &amg, ws);
        let build_sketch = |ws: &mut SolveWorkspace| -> SmwSketch {
            let x0 = solve(&b, ws).expect("baseline solve").x;
            let mut sk = SmwSketch::new(x0, b.clone(), 1e-9);
            for &rail in &rails {
                let col = sk.add_column(vec![(rail, 1.0)]);
                sk.ensure_column(col, |u| solve(u, ws).map(|s| s.x))
                    .expect("column solve");
            }
            sk
        };

        let iterations = probe_iterations(&a, &b, &opts, Some(&amg));
        meta.insert(
            "fault_sketch/build/g96".to_string(),
            Extra {
                preconditioner: "amg",
                operator: "csr",
                precision: "f64",
                iterations,
            },
        );
        let mut g = c.benchmark_group("fault_sketch");
        g.sample_size(s.scaling_samples);
        g.bench_function("build/g96", |bch| {
            let mut ws = SolveWorkspace::new();
            bch.iter(|| black_box(build_sketch(&mut ws).ready_count()))
        });
        g.finish();

        let mut ws = SolveWorkspace::new();
        let sk = build_sketch(&mut ws);
        let updates: Vec<SmwUpdate> = (0..2)
            .map(|c| SmwUpdate {
                column: c,
                scale: rail_g,
                rhs_delta: 0.0,
            })
            .collect();
        let answer = sk.query(&updates).expect("warm what-if query");
        meta.insert(
            "fault_sketch/query/g96".to_string(),
            Extra {
                preconditioner: "none",
                operator: "smw",
                precision: "f64",
                iterations: 0,
            },
        );
        let mut g = c.benchmark_group("fault_sketch");
        g.sample_size(s.kernel_samples);
        g.bench_function("query/g96", |bch| {
            bch.iter(|| black_box(sk.query(&updates).expect("warm what-if query").x[0]))
        });
        g.finish();

        // The exact re-solve of the identical downdated system: the same
        // grid stamped with only the two surviving rails.
        let (a_f, _) = grid_laplacian_with_rails(grid, &rails[2..]);
        let amg_f =
            AmgHierarchy::build(&a_f, &AmgOptions::default()).expect("faulted grid coarsens");
        let exact = cg_with_amg_ws(&a_f, &b, None, &opts, &amg_f, &mut ws).expect("exact faulted");
        let rel: f64 = answer
            .x
            .iter()
            .zip(&exact.x)
            .map(|(s, e)| (s - e) * (s - e))
            .sum::<f64>()
            .sqrt()
            / exact.x.iter().map(|e| e * e).sum::<f64>().sqrt();
        assert!(
            rel <= 1e-8,
            "SMW answer drifted from the exact faulted solve: rel = {rel:.3e}"
        );
        meta.insert(
            "fault_sketch/exact/g96".to_string(),
            Extra {
                preconditioner: "amg",
                operator: "csr",
                precision: "f64",
                iterations: exact.iterations,
            },
        );
        let mut g = c.benchmark_group("fault_sketch");
        g.sample_size(s.kernel_samples);
        g.bench_function("exact/g96", |bch| {
            let mut ws = SolveWorkspace::new();
            bch.iter(|| {
                black_box(
                    cg_with_amg_ws(&a_f, &b, None, &opts, &amg_f, &mut ws).expect("exact faulted"),
                )
            })
        });
        g.finish();
    });
}

fn bench_fig6(c: &mut Criterion, s: &Sizes) {
    // Determinism gate first: the pooled study must be bit-identical to
    // the serial one before its timing means anything. This deliberately
    // runs a 4-wide pool even on narrower hosts — identity must hold
    // oversubscribed too.
    let serial_pool = Arc::new(ThreadPool::new(1));
    let wide_pool = Arc::new(ThreadPool::new(4));
    let serial = with_pool(&serial_pool, || {
        ir_drop_study(Fidelity::Quick, s.fig6_layers).expect("fig6")
    });
    let threaded = with_pool(&wide_pool, || {
        ir_drop_study(Fidelity::Quick, s.fig6_layers).expect("fig6")
    });
    assert_eq!(
        serial, threaded,
        "threaded fig6 study must be bit-identical to serial"
    );

    for (threads, pool) in pool_widths() {
        with_pool(&pool, || {
            let mut g = c.benchmark_group("fig6_sweep");
            g.sample_size(s.sweep_samples);
            g.bench_function(format!("threads{threads}"), |bch| {
                bch.iter(|| black_box(ir_drop_study(Fidelity::Quick, s.fig6_layers).expect("fig6")))
            });
            g.finish();
        });
    }
}

/// Renders the collected reports as `BENCH_solver.json` at the repo root.
fn render_json(reports: &[BenchReport], meta: &Meta, quick: bool) -> String {
    let host = host_parallelism();
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"vstack-bench-solver/4\",\n");
    out.push_str(&format!("  \"host_parallelism\": {host},\n"));
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str("  \"entries\": [\n");
    for (i, r) in reports.iter().enumerate() {
        let threads: usize = r
            .name
            .rsplit("threads")
            .next()
            .and_then(|t| t.parse().ok())
            .unwrap_or(1);
        let comma = if i + 1 < reports.len() { "," } else { "" };
        let mut entry = format!(
            "{{\"name\": \"{}\", \"threads\": {}, \"median_ns\": {}",
            r.name, threads, r.median_ns
        );
        if let Some(x) = meta.get(&r.name) {
            entry.push_str(&format!(
                ", \"preconditioner\": \"{}\", \"operator\": \"{}\", \
                 \"precision\": \"{}\", \"iterations\": {}",
                x.preconditioner, x.operator, x.precision, x.iterations
            ));
        }
        entry.push('}');
        out.push_str(&format!("    {entry}{comma}\n"));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let quick = std::env::var("VSTACK_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0");
    let s = sizes(quick);
    let mut c = Criterion::default();
    let mut meta = Meta::new();
    bench_kernels(&mut c, &s, &mut meta);
    bench_obs_overhead(&mut c, &s);
    bench_scaling(&mut c, &s, &mut meta);
    bench_fault_sketch(&mut c, &s, &mut meta);
    bench_fig6(&mut c, &s);

    let json = render_json(c.reports(), &meta, quick);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_solver.json");
    std::fs::write(path, &json).expect("write BENCH_solver.json");
    println!("wrote {path}");
}
