//! Criterion benches: one per paper artifact, so `cargo bench` both
//! regenerates every experiment and tracks the cost of doing so.
//!
//! Benches run at `Quick` fidelity (the qualitative shapes are identical;
//! see `tests/figures.rs`) with small sample counts — each iteration is a
//! full multi-solve experiment, not a micro-kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vstack::experiments::{fig3, fig5, fig6, fig7, fig8, tables, Fidelity};
use vstack::pdn::PdnParams;

fn bench_fig3(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_validation");
    g.sample_size(10);
    g.bench_function("open_loop", |b| {
        b.iter(|| black_box(fig3::open_loop_validation().expect("fig3b")))
    });
    g.bench_function("closed_loop", |b| {
        b.iter(|| black_box(fig3::closed_loop_validation().expect("fig3a")))
    });
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_em_lifetime");
    g.sample_size(10);
    g.bench_function("fig5a_tsv", |b| {
        b.iter(|| black_box(fig5::tsv_lifetimes(Fidelity::Quick).expect("fig5a")))
    });
    g.bench_function("fig5b_c4", |b| {
        b.iter(|| black_box(fig5::c4_lifetimes(Fidelity::Quick).expect("fig5b")))
    });
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_ir_drop");
    g.sample_size(10);
    g.bench_function("imbalance_sweep_8_layers", |b| {
        b.iter(|| black_box(fig6::ir_drop_study(Fidelity::Quick, 8).expect("fig6")))
    });
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_workloads");
    g.sample_size(10);
    g.bench_function("parsec_distributions", |b| {
        b.iter(|| black_box(fig7::workload_distributions()))
    });
    g.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_efficiency");
    g.sample_size(10);
    g.bench_function("efficiency_sweep_8_layers", |b| {
        b.iter(|| black_box(fig8::efficiency_study(Fidelity::Quick, 8).expect("fig8")))
    });
    g.finish();
}

fn bench_tables(c: &mut Criterion) {
    let params = PdnParams::paper_defaults();
    c.bench_function("tables/table1_and_2", |b| {
        b.iter(|| {
            black_box(tables::table1(&params));
            black_box(tables::table2(&params));
        })
    });
}

criterion_group!(
    figures,
    bench_fig3,
    bench_fig5,
    bench_fig6,
    bench_fig7,
    bench_fig8,
    bench_tables
);
criterion_main!(figures);
