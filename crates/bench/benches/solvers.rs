//! Kernel and ablation benches for the design choices DESIGN.md calls out:
//!
//! * **Solver choice**: preconditioned CG vs unpreconditioned CG vs
//!   BiCGSTAB on a real 8-layer V-S solve-sized grid Laplacian.
//! * **Converter rail reference**: boundary-ladder vs adjacent-rails
//!   (correctness consequences live in `vstack-pdn`; here we show cost
//!   parity — the ladder reference is not an optimization compromise).
//! * **Grid refinement**: the fidelity/runtime trade of the electrical
//!   grid.
//! * **EM exponent**: Black n = 1 vs n = 2 lifetime evaluation cost (and a
//!   printed reminder of how strongly it changes the headline ratios).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vstack::em::black::BlackModel;
use vstack::em_study::tsv_array_lifetime;
use vstack::pdn::ConverterReference;
use vstack::scenario::DesignScenario;
use vstack::sparse::solver::{bicgstab, cg, BiCgStabOptions, CgOptions, Preconditioner};
use vstack::sparse::{CsrMatrix, TripletMatrix};

/// 2-D grid Laplacian with Dirichlet corners, sized like one PDN net.
fn grid_laplacian(n: usize) -> (CsrMatrix, Vec<f64>) {
    let mut t = TripletMatrix::new(n * n, n * n);
    for j in 0..n {
        for i in 0..n {
            let a = j * n + i;
            if i + 1 < n {
                t.stamp_conductance(Some(a), Some(a + 1), 20.0);
            }
            if j + 1 < n {
                t.stamp_conductance(Some(a), Some(a + n), 20.0);
            }
        }
    }
    for corner in [0, n - 1, n * (n - 1), n * n - 1] {
        t.push(corner, corner, 100.0);
    }
    let a = t.to_csr();
    let b: Vec<f64> = (0..n * n).map(|i| ((i % 7) as f64 - 3.0) * 1e-3).collect();
    (a, b)
}

fn bench_solvers(c: &mut Criterion) {
    let (a, b) = grid_laplacian(48);
    let mut g = c.benchmark_group("solver_kernels");
    g.sample_size(20);
    g.bench_function("cg_jacobi", |bch| {
        bch.iter(|| black_box(cg(&a, &b, &CgOptions::default()).expect("cg")))
    });
    g.bench_function("cg_unpreconditioned", |bch| {
        let opts = CgOptions {
            preconditioner: Preconditioner::None,
            ..CgOptions::default()
        };
        bch.iter(|| black_box(cg(&a, &b, &opts).expect("cg")))
    });
    g.bench_function("cg_incomplete_cholesky", |bch| {
        let opts = CgOptions {
            preconditioner: Preconditioner::IncompleteCholesky,
            ..CgOptions::default()
        };
        bch.iter(|| black_box(cg(&a, &b, &opts).expect("cg")))
    });
    g.bench_function("bicgstab_jacobi", |bch| {
        bch.iter(|| black_box(bicgstab(&a, &b, &BiCgStabOptions::default()).expect("bicgstab")))
    });
    g.finish();
}

fn bench_converter_reference(c: &mut Criterion) {
    let scenario = DesignScenario::paper_baseline()
        .coarse_grid()
        .layers(8)
        .converters_per_core(8);
    let loads = scenario.interleaved_loads(0.5);
    let mut g = c.benchmark_group("ablation_converter_reference");
    g.sample_size(10);
    for (name, reference) in [
        ("boundary_ladder", ConverterReference::BoundaryLadder),
        ("adjacent_rails", ConverterReference::AdjacentRails),
    ] {
        let pdn = scenario.voltage_stacked_pdn().with_reference(reference);
        g.bench_function(name, |b| {
            b.iter(|| black_box(pdn.solve(&loads).expect("solve")))
        });
    }
    g.finish();
}

fn bench_grid_refinement(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_grid_refinement");
    g.sample_size(10);
    for refinement in [1usize, 2, 3] {
        let mut params = DesignScenario::paper_baseline().pdn_params().clone();
        params.grid_refinement = refinement;
        let scenario = DesignScenario::paper_baseline()
            .params(params)
            .layers(8)
            .converters_per_core(8);
        let loads = scenario.interleaved_loads(0.5);
        let pdn = scenario.voltage_stacked_pdn();
        g.bench_with_input(
            BenchmarkId::from_parameter(refinement),
            &refinement,
            |b, _| b.iter(|| black_box(pdn.solve(&loads).expect("solve"))),
        );
    }
    g.finish();
}

fn bench_em_exponent(c: &mut Criterion) {
    let scenario = DesignScenario::paper_baseline().coarse_grid().layers(8);
    let sol = scenario.solve_regular_peak().expect("regular solve");
    let mut g = c.benchmark_group("ablation_em_exponent");
    for n in [1.0f64, 2.0] {
        let model = BlackModel::paper_tsv().with_exponent(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(tsv_array_lifetime(&sol, &model)))
        });
    }
    g.finish();
}

criterion_group!(
    solvers,
    bench_solvers,
    bench_converter_reference,
    bench_grid_refinement,
    bench_em_exponent
);
criterion_main!(solvers);
