//! Lognormal failure-time distribution.
//!
//! EM failure times are empirically lognormal: `ln T ~ N(ln median, σ²)`.

/// Error function, via the Abramowitz & Stegun 7.1.26 rational
/// approximation (max absolute error 1.5 × 10⁻⁷, ample for failure
/// probabilities).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Standard normal CDF `Φ(z)`.
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// A lognormal failure-time distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lognormal {
    /// Median failure time (same unit as queries).
    pub median: f64,
    /// Shape parameter σ.
    pub sigma: f64,
}

impl Lognormal {
    /// Creates the distribution.
    ///
    /// # Panics
    ///
    /// Panics unless `median > 0` (or infinite) and `sigma > 0`.
    pub fn new(median: f64, sigma: f64) -> Self {
        assert!(median > 0.0, "median must be positive, got {median}");
        assert!(
            sigma.is_finite() && sigma > 0.0,
            "sigma must be positive, got {sigma}"
        );
        Lognormal { median, sigma }
    }

    /// Failure CDF `F(t) = Φ(ln(t / median) / σ)`.
    ///
    /// Returns 0 for `t ≤ 0` and for infinite medians (a conductor with no
    /// current never fails).
    pub fn cdf(&self, t: f64) -> f64 {
        if t <= 0.0 || self.median.is_infinite() {
            return 0.0;
        }
        normal_cdf((t / self.median).ln() / self.sigma)
    }

    /// Survival function `1 − F(t)`.
    pub fn survival(&self, t: f64) -> f64 {
        1.0 - self.cdf(t)
    }

    /// `ln` of the survival function, computed stably for the array
    /// product `Π(1 − Fᵢ)^countᵢ`.
    pub fn log_survival(&self, t: f64) -> f64 {
        let f = self.cdf(t);
        if f >= 1.0 {
            f64::NEG_INFINITY
        } else {
            (1.0 - f).ln_1p_off()
        }
    }
}

/// Helper trait: `ln(1 − f)` written as `ln_1p(−f)` for accuracy near 0.
trait Ln1pOff {
    fn ln_1p_off(self) -> f64;
}

impl Ln1pOff for f64 {
    fn ln_1p_off(self) -> f64 {
        // `self` is (1 − f); compute ln(self) via ln_1p(self − 1).
        (self - 1.0).ln_1p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1e-8);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(3.0) - 0.999_977_9).abs() < 1e-6);
    }

    #[test]
    fn normal_cdf_symmetry() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-8);
        for z in [0.5, 1.0, 2.0] {
            assert!((normal_cdf(z) + normal_cdf(-z) - 1.0).abs() < 1e-8);
        }
    }

    #[test]
    fn median_has_half_probability() {
        let d = Lognormal::new(100.0, 0.3);
        assert!((d.cdf(100.0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn cdf_is_monotonic() {
        let d = Lognormal::new(50.0, 0.3);
        let mut prev = 0.0;
        for t in [1.0, 10.0, 25.0, 50.0, 100.0, 1000.0] {
            let f = d.cdf(t);
            assert!(f >= prev);
            prev = f;
        }
    }

    #[test]
    fn infinite_median_never_fails() {
        let d = Lognormal {
            median: f64::INFINITY,
            sigma: 0.3,
        };
        assert_eq!(d.cdf(1e30), 0.0);
        assert_eq!(d.log_survival(1e30), 0.0);
    }

    #[test]
    fn log_survival_matches_survival() {
        let d = Lognormal::new(10.0, 0.3);
        for t in [5.0, 10.0, 20.0] {
            assert!((d.log_survival(t) - d.survival(t).ln()).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "median must be positive")]
    fn non_positive_median_rejected() {
        Lognormal::new(0.0, 0.3);
    }
}
