//! Array (first-failure) lifetime of a group of conductors.
//!
//! The paper's metric (§3.3): a pad/TSV array is "EM-damage-free" until its
//! first conductor fails, so the array failure CDF is
//! `P(t) = 1 − Π(1 − Fᵢ(t))`, and the *expected EM-damage-free lifetime*
//! is the `t` where `P(t) = 0.5`.

use crate::black::BlackModel;
use crate::lognormal::Lognormal;

/// The array failure probability at time `t` for conductor groups given as
/// `(current_a, count)` pairs.
///
/// Counts may be fractional (lumped conductors); they enter as exponents of
/// the per-conductor survival probability.
///
/// # Panics
///
/// Panics if any count is not finite and positive.
pub fn array_failure_probability(groups: &[(f64, f64)], model: &BlackModel, t: f64) -> f64 {
    1.0 - log_array_survival(groups, model, t).exp()
}

fn log_array_survival(groups: &[(f64, f64)], model: &BlackModel, t: f64) -> f64 {
    let mut log_s = 0.0;
    for &(current, count) in groups {
        assert!(count.is_finite() && count > 0.0, "count must be positive");
        let median = model.median_ttf_hours(current);
        if median.is_infinite() {
            continue;
        }
        let d = Lognormal::new(median, model.sigma);
        log_s += count * d.log_survival(t);
        if log_s == f64::NEG_INFINITY {
            break;
        }
    }
    log_s
}

/// Expected EM-damage-free lifetime (hours): the time at which the array's
/// first-failure probability reaches 50%.
///
/// Returns `f64::INFINITY` if no conductor carries current.
///
/// # Panics
///
/// Panics if `groups` contains a non-positive count.
pub fn expected_em_free_lifetime(groups: &[(f64, f64)], model: &BlackModel) -> f64 {
    // Shortest per-conductor median bounds the search window.
    let mut min_median = f64::INFINITY;
    for &(current, _) in groups {
        let m = model.median_ttf_hours(current);
        if m < min_median {
            min_median = m;
        }
    }
    if min_median.is_infinite() {
        return f64::INFINITY;
    }

    // P(t) is monotonically increasing; bisection on log t.
    // The array lifetime is below the shortest median (many samples of the
    // minimum) but not astronomically so: 10⁻⁶× is a safe lower bracket.
    let mut lo = (min_median * 1e-6).ln();
    let mut hi = (min_median * 10.0).ln();
    let p_at = |ln_t: f64| 1.0 - log_array_survival(groups, model, ln_t.exp()).exp();
    debug_assert!(p_at(lo) < 0.5, "lower bracket too high");
    debug_assert!(p_at(hi) > 0.5, "upper bracket too low");
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if p_at(mid) < 0.5 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (0.5 * (lo + hi)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> BlackModel {
        BlackModel::c4_bump()
    }

    #[test]
    fn single_conductor_lifetime_is_its_median() {
        let m = model();
        let t = expected_em_free_lifetime(&[(0.05, 1.0)], &m);
        let median = m.median_ttf_hours(0.05);
        assert!(
            (t / median - 1.0).abs() < 1e-3,
            "one conductor: P(t)=0.5 at its median ({t} vs {median})"
        );
    }

    #[test]
    fn bigger_arrays_fail_sooner() {
        let m = model();
        let one = expected_em_free_lifetime(&[(0.05, 1.0)], &m);
        let hundred = expected_em_free_lifetime(&[(0.05, 100.0)], &m);
        let myriad = expected_em_free_lifetime(&[(0.05, 10_000.0)], &m);
        assert!(hundred < one);
        assert!(myriad < hundred);
    }

    #[test]
    fn higher_current_fails_sooner() {
        let m = model();
        let light = expected_em_free_lifetime(&[(0.02, 100.0)], &m);
        let heavy = expected_em_free_lifetime(&[(0.08, 100.0)], &m);
        assert!(heavy < light);
        // n = 2 ⇒ median ratio 16; array lifetime tracks closely.
        assert!(light / heavy > 10.0);
    }

    #[test]
    fn worst_group_dominates() {
        let m = model();
        let uniform = expected_em_free_lifetime(&[(0.08, 10.0)], &m);
        let mixed = expected_em_free_lifetime(&[(0.08, 10.0), (0.01, 1000.0)], &m);
        // Adding many lightly-stressed conductors barely moves the result.
        assert!((mixed / uniform) > 0.8 && mixed <= uniform);
    }

    #[test]
    fn zero_current_array_lives_forever() {
        let m = model();
        assert_eq!(
            expected_em_free_lifetime(&[(0.0, 500.0)], &m),
            f64::INFINITY
        );
    }

    #[test]
    fn fractional_counts_interpolate() {
        let m = model();
        let a = expected_em_free_lifetime(&[(0.05, 10.0)], &m);
        let b = expected_em_free_lifetime(&[(0.05, 10.5)], &m);
        let c = expected_em_free_lifetime(&[(0.05, 11.0)], &m);
        assert!(b < a && c < b);
    }

    #[test]
    fn failure_probability_is_monotone_in_time() {
        let m = model();
        let groups = [(0.05, 50.0)];
        let t50 = expected_em_free_lifetime(&groups, &m);
        let p_before = 1.0 - log_array_survival(&groups, &m, t50 * 0.5).exp();
        let p_after = 1.0 - log_array_survival(&groups, &m, t50 * 2.0).exp();
        assert!(p_before < 0.5);
        assert!(p_after > 0.5);
    }
}
