//! Black's equation (paper ref \[4\]).

/// Boltzmann constant in eV/K.
pub const BOLTZMANN_EV_PER_K: f64 = 8.617_333_262e-5;

/// Default junction temperature in kelvin (80 °C steady state) — the
/// uncoupled baseline every stock [`BlackModel`] evaluates at. The
/// thermal–EM coupling loop replaces it per layer via
/// [`BlackModel::at_temperature`].
pub const DEFAULT_JUNCTION_K: f64 = 353.15;

/// Black's-equation parameters for one conductor technology.
///
/// `MTTF_median = A · J⁻ⁿ · exp(Eₐ / (k·T))` with `J = I / area`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlackModel {
    /// Technology prefactor `A`, in hours · (A/cm²)ⁿ.
    pub prefactor: f64,
    /// Current-density exponent `n` (2 for void-nucleation-dominated
    /// solder/copper, the usual assumption for C4 and TSV).
    pub current_exponent: f64,
    /// Activation energy `Eₐ` in eV (≈0.8 eV for Cu/solder systems).
    pub activation_energy_ev: f64,
    /// Junction temperature in kelvin.
    pub temperature_k: f64,
    /// Conductor cross-section in cm², used to convert current to density.
    pub area_cm2: f64,
    /// Lognormal shape parameter σ of the failure-time distribution.
    pub sigma: f64,
}

impl BlackModel {
    /// Parameters for a C4 solder bump (≈100 µm diameter contact).
    pub fn c4_bump() -> Self {
        BlackModel {
            prefactor: 5.0e12,
            current_exponent: 2.0,
            activation_energy_ev: 0.8,
            temperature_k: DEFAULT_JUNCTION_K,
            area_cm2: std::f64::consts::PI * (50e-4f64).powi(2),
            sigma: 0.3,
        }
    }

    /// Parameters for a 5 µm-diameter copper TSV (Table 1 geometry).
    pub fn tsv() -> Self {
        BlackModel {
            prefactor: 5.0e12,
            current_exponent: 2.0,
            activation_energy_ev: 0.8,
            temperature_k: DEFAULT_JUNCTION_K,
            area_cm2: std::f64::consts::PI * (2.5e-4f64).powi(2),
            sigma: 0.3,
        }
    }

    /// C4 parameters calibrated to the paper's *normalized* Fig 5b ratios.
    ///
    /// Copper/solder EM exponents are reported between 1 (void growth
    /// limited) and 2 (void nucleation limited). The paper's modest
    /// normalized gaps (regular-PDN C4 lifetime ≈0.75× the 2-layer V-S
    /// value, "up to 5×" at 8 layers) are only consistent with growth-
    /// limited `n = 1`; the [`BlackModel::c4_bump`] default keeps the more
    /// conservative `n = 2`.
    pub fn paper_c4() -> Self {
        BlackModel {
            current_exponent: 1.0,
            ..BlackModel::c4_bump()
        }
    }

    /// TSV parameters calibrated like [`BlackModel::paper_c4`].
    pub fn paper_tsv() -> Self {
        BlackModel {
            current_exponent: 1.0,
            ..BlackModel::tsv()
        }
    }

    /// Returns a copy with a different current-density exponent (for the
    /// nucleation-vs-growth ablation bench).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < n ≤ 4`.
    pub fn with_exponent(mut self, n: f64) -> Self {
        assert!(n > 0.0 && n <= 4.0, "EM exponent out of physical range");
        self.current_exponent = n;
        self
    }

    /// Returns a copy evaluated at a different junction temperature
    /// (kelvin) — used to couple the EM study to the thermal model.
    ///
    /// # Panics
    ///
    /// Panics if `temperature_k` is not finite and positive.
    pub fn at_temperature(mut self, temperature_k: f64) -> Self {
        assert!(
            temperature_k.is_finite() && temperature_k > 0.0,
            "temperature must be positive kelvin"
        );
        self.temperature_k = temperature_k;
        self
    }

    /// Current density in A/cm² for a conductor current in amperes.
    pub fn current_density(&self, current_a: f64) -> f64 {
        current_a.abs() / self.area_cm2
    }

    /// Median time-to-failure in hours for a conductor carrying
    /// `current_a`. Returns `f64::INFINITY` for zero current.
    ///
    /// # Panics
    ///
    /// Panics if `current_a` is not finite.
    pub fn median_ttf_hours(&self, current_a: f64) -> f64 {
        assert!(current_a.is_finite(), "current must be finite");
        let j = self.current_density(current_a);
        if j == 0.0 {
            return f64::INFINITY;
        }
        let thermal = (self.activation_energy_ev / (BOLTZMANN_EV_PER_K * self.temperature_k)).exp();
        self.prefactor * j.powf(-self.current_exponent) * thermal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubling_current_quarters_lifetime() {
        let m = BlackModel::c4_bump();
        let t1 = m.median_ttf_hours(0.05);
        let t2 = m.median_ttf_hours(0.10);
        assert!((t1 / t2 - 4.0).abs() < 1e-9, "n=2 scaling, got {}", t1 / t2);
    }

    #[test]
    fn zero_current_lives_forever() {
        assert_eq!(BlackModel::tsv().median_ttf_hours(0.0), f64::INFINITY);
    }

    #[test]
    fn hotter_is_shorter() {
        let cool = BlackModel::tsv().at_temperature(323.15);
        let hot = BlackModel::tsv().at_temperature(373.15);
        assert!(cool.median_ttf_hours(0.01) > hot.median_ttf_hours(0.01));
    }

    #[test]
    fn sign_of_current_irrelevant() {
        let m = BlackModel::tsv();
        assert_eq!(m.median_ttf_hours(0.01), m.median_ttf_hours(-0.01));
    }

    #[test]
    fn tsv_density_higher_than_c4_for_same_current() {
        let c4 = BlackModel::c4_bump();
        let tsv = BlackModel::tsv();
        assert!(tsv.current_density(0.01) > c4.current_density(0.01));
    }
}
