//! Electromigration (EM) lifetime models for power-delivery conductors.
//!
//! Implements the paper's §3.3 methodology end to end:
//!
//! 1. **Black's equation** ([`black::BlackModel`]) gives each conductor's
//!    *median* time-to-failure from its current density and temperature:
//!    `MTTF = A · J⁻ⁿ · exp(Eₐ / kT)`.
//! 2. A conductor's failure time follows a **lognormal distribution**
//!    ([`lognormal::Lognormal`]) around that median.
//! 3. A pad or TSV **array** fails when its first conductor fails:
//!    `P(t) = 1 − Π(1 − Fᵢ(t))` ([`mod@array`]). The paper's robustness metric
//!    is the time where `P(t) = 0.5` — the *expected EM-damage-free
//!    lifetime* — computed here by bisection on `log t`.
//!
//! The figures normalize lifetimes to a reference configuration (the
//! 2-layer V-S PDN), so the absolute prefactor `A` cancels; the defaults
//! are nevertheless chosen to give hour-scale numbers typical of
//! accelerated-stress extrapolations.
//!
//! # Example
//!
//! ```
//! use vstack_em::{array::expected_em_free_lifetime, black::BlackModel};
//!
//! let model = BlackModel::c4_bump();
//! // An array of 100 pads at 50 mA each outlives one at 100 mA each.
//! let light = expected_em_free_lifetime(&[(0.05, 100.0)], &model);
//! let heavy = expected_em_free_lifetime(&[(0.10, 100.0)], &model);
//! assert!(light > heavy);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
pub mod black;
pub mod lognormal;

pub use array::expected_em_free_lifetime;
pub use black::BlackModel;
pub use lognormal::Lognormal;
