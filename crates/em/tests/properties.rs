//! Property-based tests for the EM lifetime models.

use proptest::prelude::*;
use vstack_em::array::{array_failure_probability, expected_em_free_lifetime};
use vstack_em::black::BlackModel;
use vstack_em::lognormal::{normal_cdf, Lognormal};

fn model() -> BlackModel {
    BlackModel::c4_bump()
}

proptest! {
    /// Lifetime strictly decreases when any conductor's current increases.
    #[test]
    fn lifetime_monotone_in_current(
        base in 0.01..0.2f64,
        extra in 0.001..0.2f64,
        count in 1.0..500.0f64,
    ) {
        let m = model();
        let low = expected_em_free_lifetime(&[(base, count)], &m);
        let high = expected_em_free_lifetime(&[(base + extra, count)], &m);
        prop_assert!(high < low);
    }

    /// Lifetime strictly decreases when conductors are added at the same
    /// stress.
    #[test]
    fn lifetime_monotone_in_count(current in 0.01..0.2f64, count in 1.0..500.0f64) {
        let m = model();
        let small = expected_em_free_lifetime(&[(current, count)], &m);
        let large = expected_em_free_lifetime(&[(current, count * 2.0)], &m);
        prop_assert!(large < small);
    }

    /// Splitting a group into two identical halves changes nothing.
    #[test]
    fn group_split_invariance(current in 0.01..0.2f64, count in 2.0..500.0f64) {
        let m = model();
        let whole = expected_em_free_lifetime(&[(current, count)], &m);
        let split = expected_em_free_lifetime(
            &[(current, count / 2.0), (current, count / 2.0)],
            &m,
        );
        prop_assert!((whole - split).abs() / whole < 1e-6);
    }

    /// The solved lifetime really is the 50% point of the array CDF.
    #[test]
    fn lifetime_is_median_of_array_cdf(
        current in 0.01..0.2f64,
        count in 1.0..200.0f64,
    ) {
        let m = model();
        let groups = [(current, count)];
        let t50 = expected_em_free_lifetime(&groups, &m);
        let p = array_failure_probability(&groups, &m, t50);
        prop_assert!((p - 0.5).abs() < 1e-3, "P(t50) = {p}");
    }

    /// Black scaling: lifetime ratio follows (I1/I2)^n exactly for a
    /// single conductor.
    #[test]
    fn black_power_law(i1 in 0.01..0.1f64, ratio in 1.1..5.0f64) {
        let m = model();
        let t1 = m.median_ttf_hours(i1);
        let t2 = m.median_ttf_hours(i1 * ratio);
        let expect = ratio.powf(m.current_exponent);
        prop_assert!((t1 / t2 - expect).abs() / expect < 1e-9);
    }

    /// Lognormal CDF is a proper distribution function.
    #[test]
    fn lognormal_cdf_bounds(median in 1.0..1e6f64, t in 0.0..1e7f64) {
        let d = Lognormal::new(median, 0.3);
        let f = d.cdf(t);
        prop_assert!((0.0..=1.0).contains(&f));
    }

    /// Normal CDF is monotone.
    #[test]
    fn normal_cdf_monotone(z in -5.0..5.0f64, dz in 0.001..2.0f64) {
        prop_assert!(normal_cdf(z + dz) >= normal_cdf(z));
    }
}
