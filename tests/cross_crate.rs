//! Cross-crate integration tests: exercise full pipelines that span
//! several substrates (power → PDN → EM; SC → circuit; thermal → EM).

use vstack::circuit::{Circuit, GROUND};
use vstack::em::black::BlackModel;
use vstack::em_study::{c4_array_lifetime, paper_em_lifetimes};
use vstack::pdn::{StackLoads, TsvTopology};
use vstack::power::workload::{ImbalancePattern, ParsecApp, WorkloadSampler};
use vstack::sc::compact::ScConverter;
use vstack::sc::detailed::DetailedSim;
use vstack::scenario::DesignScenario;
use vstack::thermal::{StackThermalModel, ThermalParams};

/// Workload sampler → stack loads → V-S PDN solve → EM lifetime: the full
/// pipeline used by the scheduling example.
#[test]
fn workload_to_lifetime_pipeline() {
    let scenario = DesignScenario::paper_baseline().coarse_grid().layers(4);
    let sampler = WorkloadSampler::paper_setup();
    let samples: Vec<_> = sampler
        .samples(ParsecApp::Ferret)
        .into_iter()
        .take(4)
        .collect();
    let loads = StackLoads::from_samples(scenario.pdn_params(), &samples);
    let sol = scenario.voltage_stacked_pdn().solve(&loads).unwrap();
    assert!(sol.max_ir_drop_frac > 0.0 && sol.max_ir_drop_frac < 0.1);
    let life = paper_em_lifetimes(&sol);
    assert!(life.c4_hours.is_finite() && life.c4_hours > 0.0);
    assert!(life.tsv_hours.is_finite() && life.tsv_hours > 0.0);
}

/// The thermal model's hotspot temperature plugs into Black's equation and
/// shortens lifetimes relative to a cool-junction assumption.
#[test]
fn thermal_coupling_shortens_lifetime() {
    let scenario = DesignScenario::paper_baseline().coarse_grid().layers(8);
    let sol = scenario.solve_regular_peak().unwrap();

    let thermal = StackThermalModel::new(ThermalParams::paper_air_cooled(), 8, 4, 4);
    let power = vec![vec![7.6 / 16.0; 16]; 8];
    let hotspot_k = thermal.solve(&power).unwrap().max_temperature_k();
    assert!(hotspot_k > 273.15 + 60.0);

    let cool = c4_array_lifetime(&sol, &BlackModel::paper_c4().at_temperature(300.0));
    let hot = c4_array_lifetime(&sol, &BlackModel::paper_c4().at_temperature(hotspot_k));
    assert!(
        hot < cool / 3.0,
        "an ≈90 °C junction should cost well over 3x lifetime vs 27 °C"
    );
}

/// Compact and detailed SC models agree on a point neither was explicitly
/// calibrated against (30 mA).
#[test]
fn sc_models_agree_off_calibration_point() {
    let sc = ScConverter::paper_28nm();
    let compact = sc.operate(2.0, 0.0, 0.03);
    let detailed = DetailedSim::new(sc).simulate(2.0, 0.03).unwrap();
    assert!((compact.efficiency - detailed.efficiency).abs() < 0.10);
    assert!((compact.v_drop - detailed.v_drop).abs() < 0.012);
}

/// The MNA engine reproduces the compact converter stamp: a discrete
/// circuit with a VCVS + series R behaves like the PDN's rank-1 stamp.
#[test]
fn converter_stamp_matches_explicit_vcvs_circuit() {
    // Explicit MNA circuit: rails 2 V / 0 V, VCVS out = (top+bottom)/2
    // behind 0.6 Ω, load 50 mA.
    let mut ckt = Circuit::new();
    let top = ckt.node("top");
    let bottom = ckt.node("bottom");
    let ideal = ckt.node("ideal");
    let out = ckt.node("out");
    ckt.voltage_source(top, GROUND, 2.0);
    ckt.resistor(bottom, GROUND, 1e-3);
    ckt.vcvs(ideal, GROUND, &[(top, GROUND, 0.5), (bottom, GROUND, 0.5)]);
    ckt.resistor(ideal, out, 0.6);
    ckt.current_source(out, GROUND, 0.05);
    let op = ckt.dc_operating_point().unwrap();
    // Expected: 1.0 − 0.05·0.6 = 0.97.
    assert!((op.voltage(out) - 0.97).abs() < 1e-6);

    // PDN-style solve of the same situation through the scenario API.
    let scenario = DesignScenario::paper_baseline()
        .coarse_grid()
        .layers(2)
        .converters_per_core(1);
    let sol = scenario.solve_voltage_stacked(1.0).unwrap();
    // Full imbalance on 2 layers: converters source the whole idle layer's
    // dynamic current; drop should be visible but bounded.
    assert!(sol.max_ir_drop_frac > 0.01);
}

/// Interleaved-pattern loads conserve current through the V-S stack: the
/// board supplies ≈ the max layer current plus converter overhead.
#[test]
fn vs_input_current_tracks_max_layer() {
    let scenario = DesignScenario::paper_baseline().coarse_grid().layers(4);
    let loads = scenario.interleaved_loads(0.5);
    let sol = scenario.voltage_stacked_pdn().solve(&loads).unwrap();
    let i_input: f64 = sol
        .vdd_c4
        .groups()
        .iter()
        .map(|g| g.current_a * g.count)
        .sum();
    let i_max = loads.max_layer_current();
    let i_min = (0..4)
        .map(|l| loads.layer_current(l))
        .fold(f64::MAX, f64::min);
    let i_mean = (i_max + i_min) / 2.0;
    assert!(
        i_input > 0.95 * i_mean && i_input < 1.1 * i_max,
        "input {i_input} A vs layer mean {i_mean} / max {i_max} A"
    );
}

/// TSV density helps IR drop but — because of local current crowding —
/// barely moves EM lifetime (the paper's §5.1 observation that designers
/// cannot buy EM robustness with more TSVs).
#[test]
fn tsv_density_helps_noise_but_not_lifetime() {
    let solve = |topo| {
        DesignScenario::paper_baseline()
            .coarse_grid()
            .layers(4)
            .tsv_topology(topo)
            .solve_regular_peak()
            .unwrap()
    };
    let dense = solve(TsvTopology::Dense);
    let few = solve(TsvTopology::Few);
    assert!(dense.max_ir_drop_frac < few.max_ir_drop_frac);
    let dense_life = paper_em_lifetimes(&dense).tsv_hours;
    let few_life = paper_em_lifetimes(&few).tsv_hours;
    let ratio = dense_life / few_life;
    assert!(
        (0.5..2.0).contains(&ratio),
        "60x more TSVs must NOT translate into lifetime ({ratio:.2}x)"
    );
}

/// Loads built from the imbalance pattern match loads built from
/// activities.
#[test]
fn load_constructors_are_consistent() {
    let params = DesignScenario::paper_baseline().pdn_params().clone();
    let a = StackLoads::interleaved(&params, 4, &ImbalancePattern::new(0.4));
    let b = StackLoads::from_activities(&params, &[1.0, 0.6, 1.0, 0.6]);
    for layer in 0..4 {
        assert!((a.layer_current(layer) - b.layer_current(layer)).abs() < 1e-12);
    }
}
