//! Shape tests for every figure driver at Quick fidelity: each figure's
//! qualitative story — who wins, which way the curves bend, where they
//! truncate — must match the paper.

use vstack::experiments::{fig3, fig5, fig6, fig7, fig8, tables, Fidelity};
use vstack::pdn::{PdnParams, TsvTopology};

#[test]
fn fig3_model_validation_holds() {
    let open = fig3::open_loop_validation().unwrap();
    assert_eq!(open.len(), fig3::OPEN_LOOP_LOADS_MA.len());
    for r in &open {
        assert!(r.efficiency_error() < 0.10, "open loop at {} mA", r.load_ma);
        assert!(r.vdrop_error_mv() < 12.0, "open loop at {} mA", r.load_ma);
    }
    // Efficiency monotonically rises with load under open-loop control.
    for w in open.windows(2) {
        assert!(w[1].model_efficiency > w[0].model_efficiency);
    }

    let closed = fig3::closed_loop_validation().unwrap();
    for r in &closed {
        assert!(
            r.efficiency_error() < 0.12,
            "closed loop at {} mA",
            r.load_ma
        );
    }
    // Closed loop beats open loop at the lightest common comparison point.
    let open_light = open[0].model_efficiency; // 10 mA
    let closed_light = closed
        .iter()
        .find(|r| (r.load_ma - 12.5).abs() < 0.1)
        .unwrap()
        .model_efficiency;
    assert!(closed_light > open_light);
}

#[test]
fn fig5a_tsv_lifetime_shapes() {
    let d = fig5::tsv_lifetimes(Fidelity::Quick).unwrap();
    assert_eq!(d.series.len(), 4);
    let vs = d.series_named("V-S").unwrap();
    let few = d.series_named("Reg. PDN, Few").unwrap();
    let dense = d.series_named("Reg. PDN, Dense").unwrap();

    assert!(
        (vs.at(2).unwrap() - 1.0).abs() < 1e-9,
        "normalization anchor"
    );
    // Regular series decay monotonically with layers.
    for s in [few, dense] {
        for w in s.points.windows(2) {
            assert!(w[1].1 < w[0].1, "{} must decay", s.label);
        }
    }
    // V-S at 8 layers ≥3× any regular series.
    for s in &d.series {
        if !s.label.starts_with("V-S") {
            assert!(vs.at(8).unwrap() > 3.0 * s.at(8).unwrap(), "{}", s.label);
        }
    }
    // Regular beats V-S at 2 layers (the paper's through-via observation).
    assert!(few.at(2).unwrap() > 1.0);
}

#[test]
fn fig5b_c4_lifetime_shapes() {
    let d = fig5::c4_lifetimes(Fidelity::Quick).unwrap();
    assert_eq!(d.series.len(), 5);
    let vs = d.series_named("V-S").unwrap();
    // V-S flat within 10% across layers.
    for (_, v) in &vs.points {
        assert!((v - 1.0).abs() < 0.1);
    }
    // More power pads always help the regular PDN at fixed layer count…
    let at8: Vec<f64> = ["25%", "50%", "75%", "100%"]
        .iter()
        .map(|p| {
            d.series
                .iter()
                .find(|s| s.label.contains(p))
                .unwrap()
                .at(8)
                .unwrap()
        })
        .collect();
    for w in at8.windows(2) {
        assert!(w[1] > w[0], "more pads must help: {at8:?}");
    }
    // …but never reach the V-S level.
    assert!(vs.at(8).unwrap() > at8[3]);
}

#[test]
fn fig6_ir_drop_shapes() {
    let d = fig6::ir_drop_study(Fidelity::Quick, 8).unwrap();
    // Reference lines ordered by TSV density.
    let dense = d.regular(TsvTopology::Dense).unwrap();
    let sparse = d.regular(TsvTopology::Sparse).unwrap();
    let few = d.regular(TsvTopology::Few).unwrap();
    assert!(dense < sparse && sparse < few);
    // The paper's reference lines sit in the 2–3.5% Vdd band; our
    // calibration lands ≈1.5–2× higher (EXPERIMENTS.md discusses why),
    // so bound the band rather than the exact values.
    assert!(dense > 0.01 && few < 0.08, "dense {dense}, few {few}");

    // V-S series increase with imbalance and decrease with converter count.
    for k in fig6::CONVERTERS_PER_CORE {
        let s = d.vs(k).unwrap();
        for w in s.points.windows(2) {
            assert!(
                w[1].max_ir_drop_frac >= w[0].max_ir_drop_frac - 1e-6,
                "k={k} must be non-decreasing"
            );
        }
    }
    let x = 0.5;
    let four = d.vs(4).unwrap().at(x).unwrap();
    let eight = d.vs(8).unwrap().at(x).unwrap();
    assert!(eight < four);

    // Equal-area story: V-S(8/core) beats Dense at 25% imbalance, loses at
    // full imbalance by a bounded margin (paper: up to 1.58% Vdd).
    let vs8 = d.vs(8).unwrap();
    assert!(vs8.at(0.25).unwrap() < dense);
    let worst = vs8.points.last().unwrap().max_ir_drop_frac;
    assert!(worst > dense, "V-S must exceed Dense at full imbalance");
    assert!(worst - dense < 0.035, "excess {:.3}", worst - dense);
}

#[test]
fn fig7_box_plot_shapes() {
    let d = fig7::workload_distributions();
    assert_eq!(d.rows.len(), 13);
    assert!((0.60..=0.70).contains(&d.average_max_imbalance));
    assert!(d.global_max_imbalance > 0.90);
    // Intra-app variance is much smaller than cross-app variance: the
    // widest single-app box is narrower than the cross-app median spread.
    let medians: Vec<f64> = d.rows.iter().map(|r| r.power_w.median).collect();
    let cross_spread = medians.iter().cloned().fold(f64::MIN, f64::max)
        - medians.iter().cloned().fold(f64::MAX, f64::min);
    let widest_box = d
        .rows
        .iter()
        .map(|r| r.power_w.q75 - r.power_w.q25)
        .fold(0.0f64, f64::max);
    assert!(widest_box < cross_spread);
}

#[test]
fn fig8_efficiency_shapes() {
    let d = fig8::efficiency_study(Fidelity::Quick, 8).unwrap();
    // Every V-S series decreases with imbalance.
    for k in fig6::CONVERTERS_PER_CORE {
        let s = d.vs(k).unwrap();
        for w in s.points.windows(2) {
            assert!(w[1].efficiency < w[0].efficiency, "k={k}");
        }
    }
    // More converters → lower efficiency (open-loop overhead).
    let e2 = d.vs(2).unwrap().at(0.1).unwrap();
    let e8 = d.vs(8).unwrap().at(0.1).unwrap();
    assert!(e2 > e8);
    // V-S dominates the regular-PDN-SC baseline wherever feasible.
    for p in &d.regular_sc_reference.points {
        for k in fig6::CONVERTERS_PER_CORE {
            if let Some(vs) = d.vs(k).unwrap().at(p.imbalance) {
                assert!(vs > p.efficiency, "k={k} x={}", p.imbalance);
            }
        }
    }
}

#[test]
fn tables_match_paper() {
    let p = PdnParams::paper_defaults();
    let t1 = tables::table1(&p);
    assert_eq!(t1.len(), 7);
    let t2 = tables::table2(&p);
    assert_eq!(t2.len(), 3);
    assert_eq!(t2[0].tsvs_per_core, 6650);
    assert_eq!(t2[1].tsvs_per_core, 1675);
    assert_eq!(t2[2].tsvs_per_core, 110);
}
