//! Integration tests asserting the paper's headline quantitative claims
//! (abstract + §5) against the full model stack.
//!
//! These run at `Quick` fidelity (coarse electrical grid); the claims
//! tested are ratios and orderings, which the grid refinement does not
//! change.

use vstack::em_study::paper_em_lifetimes;
use vstack::experiments::fig6::{imbalance_sweep, ir_drop_study};
use vstack::experiments::Fidelity;
use vstack::pdn::TsvTopology;
use vstack::power::workload::WorkloadSampler;
use vstack::scenario::DesignScenario;
use vstack::thermal::{StackThermalModel, ThermalParams};

/// Abstract: "significantly improving the EM-lifetime of C4 and TSV array
/// (e.g., up to 5x)".
#[test]
fn claim_up_to_5x_c4_lifetime_at_8_layers() {
    let vs = DesignScenario::paper_baseline()
        .coarse_grid()
        .layers(8)
        .solve_voltage_stacked(0.0)
        .unwrap();
    let reg = DesignScenario::paper_baseline()
        .coarse_grid()
        .layers(8)
        .tsv_topology(TsvTopology::Sparse)
        .solve_regular_peak()
        .unwrap();
    let gap = paper_em_lifetimes(&vs).c4_hours / paper_em_lifetimes(&reg).c4_hours;
    assert!(
        gap >= 4.0,
        "C4 lifetime gap at 8 layers should be ≈5x, got {gap:.1}x"
    );
}

/// §5.1: "the increasing current density significantly reduces the
/// lifetime of the regular PDN's TSV array by up to 84%".
#[test]
fn claim_regular_tsv_lifetime_collapses() {
    let life = |layers: usize| {
        let sol = DesignScenario::paper_baseline()
            .coarse_grid()
            .layers(layers)
            .tsv_topology(TsvTopology::Few)
            .solve_regular_peak()
            .unwrap();
        paper_em_lifetimes(&sol).tsv_hours
    };
    let drop = 1.0 - life(8) / life(2);
    assert!(
        drop > 0.6,
        "regular TSV lifetime should drop heavily with stacking, got {:.0}%",
        100.0 * drop
    );
}

/// §5.1: "the EM-lifetime of V-S PDNs in 3D-ICs with more layers still
/// surpasses that of the regular PDN by more than 3x".
#[test]
fn claim_vs_tsv_advantage_exceeds_3x() {
    let vs = DesignScenario::paper_baseline()
        .coarse_grid()
        .layers(8)
        .solve_voltage_stacked(0.0)
        .unwrap();
    let reg = DesignScenario::paper_baseline()
        .coarse_grid()
        .layers(8)
        .tsv_topology(TsvTopology::Few)
        .solve_regular_peak()
        .unwrap();
    let gap = paper_em_lifetimes(&vs).tsv_hours / paper_em_lifetimes(&reg).tsv_hours;
    assert!(
        gap > 3.0,
        "V-S TSV advantage should exceed 3x, got {gap:.1}x"
    );
}

/// §5.1: "it is not feasible to improve the regular PDN's EM-robustness to
/// the same extent as with the V-S PDN by simply allocating more
/// power-supply TSVs and C4 pads."
#[test]
fn claim_more_pads_cannot_catch_up() {
    let vs = DesignScenario::paper_baseline()
        .coarse_grid()
        .layers(8)
        .solve_voltage_stacked(0.0)
        .unwrap();
    let reg_all_pads = DesignScenario::paper_baseline()
        .coarse_grid()
        .layers(8)
        .tsv_topology(TsvTopology::Dense)
        .power_c4_fraction(1.0)
        .solve_regular_peak()
        .unwrap();
    assert!(
        paper_em_lifetimes(&vs).c4_hours > paper_em_lifetimes(&reg_all_pads).c4_hours,
        "even 100% power pads + dense TSVs should not match V-S"
    );
}

/// §5.2 + abstract: at the application-average imbalance (65%), the V-S
/// PDN's IR drop exceeds the equal-area regular PDN's by only ≈0.75% Vdd.
#[test]
fn claim_075_percent_vdd_penalty_at_65_percent_imbalance() {
    let data = ir_drop_study(Fidelity::Quick, 8).unwrap();
    let vs = data
        .vs(8)
        .unwrap()
        .interpolate(0.65)
        .expect("65% must be feasible with 8 converters/core");
    let dense = data.regular(TsvTopology::Dense).unwrap();
    let penalty = vs - dense;
    assert!(
        penalty < 0.015,
        "V-S penalty at 65% imbalance should be ≲1% Vdd, got {:.2}%",
        100.0 * penalty
    );
}

/// §5.2: with equal area, V-S has lower IR drop below ≈50% imbalance and
/// exceeds the regular PDN by at most ≈1.6% Vdd at full imbalance.
#[test]
fn claim_crossover_near_50_percent() {
    let data = ir_drop_study(Fidelity::Quick, 8).unwrap();
    let vs = data.vs(8).unwrap();
    let dense = data.regular(TsvTopology::Dense).unwrap();
    assert!(
        vs.interpolate(0.25).unwrap() < dense,
        "V-S should win at low imbalance"
    );
    let worst = vs
        .points
        .iter()
        .map(|p| p.max_ir_drop_frac)
        .fold(0.0f64, f64::max);
    assert!(
        worst - dense < 0.035,
        "V-S excess at worst feasible imbalance should stay small, got {:.2}%",
        100.0 * (worst - dense)
    );
}

/// Fig 6 methodology: design points overloading a converter are excluded,
/// and 2 converters/core cannot cover the full sweep.
#[test]
fn claim_converter_limit_truncates_sweep() {
    let data = ir_drop_study(Fidelity::Quick, 8).unwrap();
    let two = data.vs(2).unwrap();
    assert!(!two.skipped.is_empty());
    let eight = data.vs(8).unwrap();
    let sweep = imbalance_sweep(Fidelity::Quick);
    assert_eq!(
        eight.points.len(),
        sweep.len(),
        "8 converters/core must cover the whole sweep"
    );
}

/// §4.1: up to 8 layers stay below 100 °C with conventional air cooling.
#[test]
fn claim_8_layers_air_coolable() {
    let feasible = StackThermalModel::max_feasible_layers(
        ThermalParams::paper_air_cooled(),
        4,
        4,
        7.6 / 16.0,
        100.0,
        12,
    )
    .unwrap();
    assert!(
        (8..=10).contains(&feasible),
        "paper builds up to 8 layers under air cooling, model says {feasible}"
    );
}

/// §5.2: blackscholes ≈10% max imbalance; application average ≈65%;
/// global worst case >90%.
#[test]
fn claim_parsec_imbalance_statistics() {
    let s = WorkloadSampler::paper_setup();
    assert!(s.max_imbalance(vstack::power::workload::ParsecApp::Blackscholes) < 0.12);
    let avg = s.average_max_imbalance();
    assert!((0.60..=0.70).contains(&avg), "got {avg}");
    assert!(s.global_max_imbalance() > 0.90);
}

/// §5.2: one SC converter costs ≈3% of an ARM core's area with
/// high-density capacitors, making V-S(Few TSV, 8 conv/core) area-
/// comparable to regular(Dense TSV).
#[test]
fn claim_equal_area_comparison() {
    let params = DesignScenario::paper_baseline();
    let conv_frac = vstack::sc::area::area_overhead_per_core(
        vstack::sc::CapacitorTech::Ferroelectric,
        params.pdn_params().core.area_mm2(),
    );
    assert!((0.025..0.045).contains(&conv_frac), "got {conv_frac}");
    let vs_total = DesignScenario::paper_baseline()
        .tsv_topology(TsvTopology::Few)
        .converters_per_core(8)
        .vs_area_overhead_per_core();
    let dense = TsvTopology::Dense.area_overhead(params.pdn_params());
    assert!(
        (vs_total - dense).abs() / dense < 0.35,
        "{vs_total} vs {dense}"
    );
}
