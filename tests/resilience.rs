//! Robustness integration tests: the escalation ladder's fallback trail,
//! fault injection through the scenario layer, and the wearout loop's
//! terminal states, exercised end to end across the workspace crates.

use vstack::experiments::ext_wearout::{
    regular_wearout, vs_wearout, WearoutConfig, WearoutOutcome,
};
use vstack::experiments::Fidelity;
use vstack::pdn::{FaultSet, PdnError};
use vstack::scenario::DesignScenario;
use vstack::sparse::{solve_robust, CsrMatrix, RobustOptions, SolveMethod, TripletMatrix};

/// Kershaw's 4×4 SPD matrix: well-posed, but zero-fill incomplete
/// Cholesky hits a negative pivot on it, forcing the ladder's first rung
/// to fail.
fn kershaw() -> CsrMatrix {
    let vals = [
        [3.0, -2.0, 0.0, 2.0],
        [-2.0, 3.0, -2.0, 0.0],
        [0.0, -2.0, 3.0, -2.0],
        [2.0, 0.0, -2.0, 3.0],
    ];
    let mut t = TripletMatrix::new(4, 4);
    for (r, row) in vals.iter().enumerate() {
        for (c, &v) in row.iter().enumerate() {
            if v != 0.0 {
                t.push(r, c, v);
            }
        }
    }
    t.to_csr()
}

/// The escalation ladder rescues an IC(0)-defeating system and its
/// `SolveReport` records the full fallback trail, starting from the
/// abandoned incomplete-Cholesky rung.
#[test]
fn escalation_ladder_reports_its_fallback_trail() {
    let a = kershaw();
    let x_true = [1.0, -2.0, 0.5, 3.0];
    let b = a.mul_vec(&x_true);
    let sol = solve_robust(&a, &b, None, &RobustOptions::default()).expect("rescued");

    assert!(sol.report.was_rescued());
    assert_eq!(
        sol.report.fallbacks[0].from,
        SolveMethod::CgIncompleteCholesky
    );
    assert_ne!(sol.report.method, SolveMethod::CgIncompleteCholesky);
    let trail = sol.report.trail();
    assert!(trail.starts_with("cg+ic0->"), "trail: {trail}");
    for (u, v) in sol.x.iter().zip(&x_true) {
        assert!((u - v).abs() < 1e-6, "x = {:?}", sol.x);
    }
}

/// A healthy PDN solved through the reported path needs no rescue, and
/// its report carries a meaningful converged residual.
#[test]
fn healthy_scenario_solve_is_unrescued() {
    let s = DesignScenario::paper_baseline().layers(2).coarse_grid();
    let sol = s
        .solve_regular_peak_reported(&FaultSet::new())
        .expect("healthy");
    assert!(!sol.report.was_rescued(), "trail: {}", sol.report.trail());
    assert!(sol.report.relative_residual <= 1e-8);
    assert!(sol.report.iterations > 0);
}

/// Killing every power pad of the regular topology yields the structured
/// [`PdnError::Disconnected`] — no panic, no raw solver breakdown.
#[test]
fn killing_every_pad_reports_disconnected() {
    let s = DesignScenario::paper_baseline().layers(2).coarse_grid();
    let pdn = s.regular_pdn();
    let mut faults = FaultSet::new();
    for ord in 0..pdn.c4().vdd_count() {
        faults.fail_vdd_pad(ord);
    }
    for ord in 0..pdn.c4().gnd_count() {
        faults.fail_gnd_pad(ord);
    }
    match s.solve_regular_peak_reported(&faults) {
        Err(PdnError::Disconnected { floating_nodes, .. }) => {
            assert!(floating_nodes > 0);
        }
        other => panic!("expected Disconnected, got {other:?}"),
    }
}

/// The wearout loop runs to a clean terminal state on both topologies and
/// produces monotonically worsening degradation curves, with the V-S
/// stack degrading more gracefully than the regular PDN.
#[test]
fn wearout_loop_terminates_cleanly_on_both_topologies() {
    let cfg = WearoutConfig {
        fidelity: Fidelity::Quick,
        kill_fraction_per_round: 0.10,
        max_rounds: 6,
        ..WearoutConfig::default()
    };
    let reg = regular_wearout(&cfg, 4).expect("regular curve");
    let vs = vs_wearout(&cfg, 4).expect("v-s curve");
    for curve in [&reg, &vs] {
        assert!(
            curve.points.len() >= 2,
            "{}: {:?}",
            curve.label,
            curve.outcome
        );
        for p in &curve.points {
            assert!(p.max_ir_drop_frac.is_finite() && p.max_ir_drop_frac >= 0.0);
        }
        // Terminal states are data, not errors.
        assert!(matches!(
            curve.outcome,
            WearoutOutcome::Disconnected { .. }
                | WearoutOutcome::DropLimitExceeded { .. }
                | WearoutOutcome::SolverExhausted { .. }
                | WearoutOutcome::Survived
        ));
    }
    assert!(
        vs.degradation_slope() < reg.degradation_slope(),
        "V-S slope {} vs regular {}",
        vs.degradation_slope(),
        reg.degradation_slope()
    );
}
